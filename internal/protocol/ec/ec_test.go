package ec

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sdso/internal/game"
	"sdso/internal/lockmgr"
	"sdso/internal/metrics"
	"sdso/internal/store"
	"sdso/internal/transport"
)

// runECGame plays a full EC game over the in-memory transport (2 endpoints
// per node: apps 0..n-1, services n..2n-1).
func runECGame(t *testing.T, cfg game.Config) ([]*Node, []game.TeamStats) {
	t.Helper()
	n := cfg.Teams
	net := transport.NewMemNetwork(2 * n)
	t.Cleanup(net.Close)
	apps := make([]transport.Endpoint, n)
	svcs := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		apps[i] = net.Endpoint(i)
		svcs[i] = net.Endpoint(n + i)
	}
	return runECGameOn(t, cfg, apps, svcs)
}

// runECGameOn plays a full EC game over caller-supplied app and service
// endpoints (one pair per node), whatever transport they sit on.
func runECGameOn(t *testing.T, cfg game.Config, apps, svcs []transport.Endpoint) ([]*Node, []game.TeamStats) {
	t.Helper()
	n := cfg.Teams
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := New(NodeConfig{
			Game:    cfg,
			App:     apps[i],
			Svc:     svcs[i],
			Metrics: metrics.NewCollector(),
		})
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		nodes[i] = node
	}
	stats := make([]game.TeamStats, n)
	appErrs := make([]error, n)
	svcErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			svcErrs[i] = nodes[i].RunService()
		}()
		go func() {
			defer wg.Done()
			stats[i], appErrs[i] = nodes[i].RunApp()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("EC game deadlocked")
	}
	for i := 0; i < n; i++ {
		if appErrs[i] != nil {
			t.Fatalf("app %d: %v", i, appErrs[i])
		}
		if svcErrs[i] != nil {
			t.Fatalf("svc %d: %v", i, svcErrs[i])
		}
	}
	return nodes, stats
}

// TestECGameSafetyInvariants: EC's trajectories may differ from the
// lockstep reference (it is asynchronous), but the world it produces must
// be sane: tanks are conserved (on board, at goal, or destroyed), the goal
// block survives, bombs never move, and no block holds a tank of a
// finished team.
func TestECGameSafetyInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := game.DefaultConfig(6, 1)
		cfg.Seed = seed
		cfg.MaxTicks = 120
		nodes, stats := runECGame(t, cfg)
		checkECWorldSanity(t, cfg, nodes, stats, fmt.Sprintf("seed %d", seed))
	}
}

// checkECWorldSanity is the EC conformance oracle: merge the replicas by
// version into the final world and require tank conservation, a surviving
// goal block, stationary bombs, and no tanks left for finished teams.
func checkECWorldSanity(t *testing.T, cfg game.Config, nodes []*Node, stats []game.TeamStats, label string) {
	t.Helper()
	initial, err := game.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Merge replicas by version to reconstruct the final world.
	merged := store.New()
	for i := 0; i < cfg.NumObjects(); i++ {
		id := store.ID(i)
		var best []byte
		bestVer := int64(-1)
		for _, node := range nodes {
			v, err := node.Store().Version(id)
			if err != nil {
				t.Fatal(err)
			}
			if v > bestVer {
				bestVer = v
				b, _ := node.Store().Get(id)
				best = b
			}
		}
		if err := merged.Register(id, best); err != nil {
			t.Fatal(err)
		}
	}
	final, err := game.DecodeWorld(cfg, merged)
	if err != nil {
		t.Fatalf("%s: final world corrupt: %v", label, err)
	}

	// Tank conservation per team.
	tanksOnBoard := map[int]int{}
	bombs := 0
	goalSeen := false
	for i, c := range final.Cells {
		switch c.Kind {
		case game.Tank:
			tanksOnBoard[c.Team]++
		case game.Bomb:
			bombs++
			if initial.Cells[i].Kind != game.Bomb {
				t.Errorf("%s: bomb appeared at %v", label, cfg.PosOf(store.ID(i)))
			}
		case game.Goal:
			goalSeen = true
		}
	}
	if !goalSeen {
		t.Errorf("%s: goal block destroyed", label)
	}
	if bombs != cfg.Bombs {
		t.Errorf("%s: %d bombs, want %d", label, bombs, cfg.Bombs)
	}
	for _, st := range stats {
		onBoard := tanksOnBoard[st.Team]
		switch {
		case st.ReachedGoal, st.Destroyed:
			if onBoard != 0 {
				t.Errorf("%s: finished team %d still on board (%d tanks): %+v", label, st.Team, onBoard, st)
			}
		default:
			if onBoard != cfg.TanksPerTeam {
				t.Errorf("%s: live team %d has %d tanks on board", label, st.Team, onBoard)
			}
		}
	}
}

// TestECLockSetArithmetic checks the paper's §4 lock counts: range 1 means
// 5 locks (all write); range 3 means 13 locks, 5 write.
func TestECLockSetArithmetic(t *testing.T) {
	for _, tt := range []struct {
		rng, total, writes int
	}{
		{1, 5, 5},
		{3, 13, 5},
	} {
		cfg := game.DefaultConfig(2, tt.rng)
		net := transport.NewMemNetwork(4)
		node, err := New(NodeConfig{Game: cfg, App: net.Endpoint(0), Svc: net.Endpoint(2)})
		net.Close()
		if err != nil {
			t.Fatal(err)
		}
		// Put the tank mid-board so nothing clips at an edge.
		node.tanks = []game.TankState{game.NewTankState(game.Pos{X: 16, Y: 12})}
		locks := node.lockSet()
		writes := 0
		for _, lr := range locks {
			if lr.write {
				writes++
			}
		}
		if len(locks) != tt.total || writes != tt.writes {
			t.Errorf("range %d: %d locks (%d write), want %d (%d write)",
				tt.rng, len(locks), writes, tt.total, tt.writes)
		}
		for i := 1; i < len(locks); i++ {
			if locks[i-1].obj >= locks[i].obj {
				t.Errorf("range %d: lock set not in ascending object order", tt.rng)
			}
		}
	}
}

// TestECManagersPartitioned: every object's lock manager is the statically
// assigned node.
func TestECManagersPartitioned(t *testing.T) {
	cfg := game.DefaultConfig(4, 1)
	net := transport.NewMemNetwork(8)
	defer net.Close()
	nodes := make([]*Node, 4)
	for i := 0; i < 4; i++ {
		node, err := New(NodeConfig{Game: cfg, App: net.Endpoint(i), Svc: net.Endpoint(4 + i)})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for obj := 0; obj < cfg.NumObjects(); obj++ {
		owner := lockmgr.ManagerFor(store.ID(obj), 4)
		for i, node := range nodes {
			if got := node.mgr.Manages(store.ID(obj)); got != (i == owner) {
				t.Fatalf("object %d: node %d manages=%v, owner=%d", obj, i, got, owner)
			}
		}
	}
}

func TestECConfigValidation(t *testing.T) {
	cfg := game.DefaultConfig(2, 1)
	net := transport.NewMemNetwork(4)
	defer net.Close()
	if _, err := New(NodeConfig{Game: cfg}); err == nil {
		t.Error("missing endpoints accepted")
	}
	if _, err := New(NodeConfig{Game: cfg, App: net.Endpoint(0), Svc: net.Endpoint(1)}); err == nil {
		t.Error("mismatched svc endpoint accepted")
	}
	if _, err := New(NodeConfig{Game: cfg, App: net.Endpoint(3), Svc: net.Endpoint(2)}); err == nil {
		t.Error("app id out of team range accepted")
	}
}
