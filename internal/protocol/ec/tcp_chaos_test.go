package ec

import (
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"sdso/internal/game"
	"sdso/internal/metrics"
	"sdso/internal/tcpchaos"
	"sdso/internal/transport"
)

// TestTCPChaosMatrixEC is the EC cell of the CI tcp-chaos-matrix job: a full
// entry-consistency game over loopback TCP with every node's links subject
// to seeded connection kills from a tcpchaos proxy. The resilient session
// layer reconnects under the protocol, EC's own suspicion/retransmission
// machinery recovers the lock and data messages each cut loses, the game
// completes, and the merged final world passes the EC safety oracle.
func TestTCPChaosMatrixEC(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	seed := int64(7)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	const teams = 3
	cfg := game.DefaultConfig(teams, 1)
	cfg.MaxTicks = 60
	cfg.Seed = seed

	// 2n endpoints (apps 0..n-1, services n..2n-1), each fronted by its own
	// chaos proxy: the mesh dials proxy addresses, every node listens on its
	// real one.
	realAddrs := make([]string, 2*teams)
	for i := range realAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		realAddrs[i] = ln.Addr().String()
		ln.Close()
	}
	proxies := make([]*tcpchaos.Proxy, 2*teams)
	proxyAddrs := make([]string, 2*teams)
	for i := range proxies {
		p, err := tcpchaos.Listen(realAddrs[i], tcpchaos.Config{
			Seed:         uint64(seed)*0x51ed + uint64(i) + 1,
			KillAfterMin: 2 << 10,
			KillAfterMax: 6 << 10,
		})
		if err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		proxies[i] = p
		proxyAddrs[i] = p.Addr()
	}

	mcs := make([]*metrics.Collector, 2*teams)
	eps := make([]*transport.TCPEndpoint, 2*teams)
	dialErrs := make([]error, 2*teams)
	var dw sync.WaitGroup
	for i := range eps {
		i := i
		mcs[i] = metrics.NewCollector()
		dw.Add(1)
		go func() {
			defer dw.Done()
			eps[i], dialErrs[i] = transport.DialTCPConfig(i, proxyAddrs, transport.TCPConfig{
				Reconnect:         true,
				ReconnectGrace:    10 * time.Second,
				BackoffBase:       2 * time.Millisecond,
				BackoffMax:        25 * time.Millisecond,
				BackoffSeed:       uint64(i) + 1,
				HeartbeatInterval: 100 * time.Millisecond,
				HeartbeatMisses:   5,
				Incarnation:       1,
				ListenAddr:        realAddrs[i],
				Metrics:           mcs[i],
			})
		}()
	}
	dw.Wait()
	for i, err := range dialErrs {
		if err != nil {
			t.Fatalf("DialTCPConfig(%d): %v", i, err)
		}
	}
	defer func() {
		var cw sync.WaitGroup
		for _, ep := range eps {
			ep := ep
			cw.Add(1)
			go func() {
				defer cw.Done()
				ep.Close()
			}()
		}
		cw.Wait()
	}()

	nodes := make([]*Node, teams)
	for i := 0; i < teams; i++ {
		node, err := New(NodeConfig{
			Game:           cfg,
			App:            eps[i],
			Svc:            eps[teams+i],
			Metrics:        mcs[i],
			SuspectTimeout: 150 * time.Millisecond,
			MaxRetransmits: 100, // kills are transient; never declare a live peer crashed
		})
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		nodes[i] = node
	}
	stats := make([]game.TeamStats, teams)
	appErrs := make([]error, teams)
	svcErrs := make([]error, teams)
	var wg sync.WaitGroup
	for i := 0; i < teams; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			svcErrs[i] = nodes[i].RunService()
		}()
		go func() {
			defer wg.Done()
			stats[i], appErrs[i] = nodes[i].RunApp()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(180 * time.Second):
		t.Fatal("EC game deadlocked under chaos")
	}
	for i := 0; i < teams; i++ {
		if appErrs[i] != nil {
			t.Fatalf("app %d (seed %d): %v", i, seed, appErrs[i])
		}
		if svcErrs[i] != nil {
			t.Fatalf("svc %d (seed %d): %v", i, seed, svcErrs[i])
		}
	}

	kills, reconnects := int64(0), 0
	for _, p := range proxies {
		kills += p.Kills()
	}
	for _, mc := range mcs {
		reconnects += mc.Snapshot().Reconnects
	}
	if kills == 0 {
		t.Fatalf("seed %d: the proxies never cut a connection; the chaos budget is miscalibrated", seed)
	}
	if reconnects == 0 {
		t.Fatalf("seed %d: %d kills but no reconnects recorded", seed, kills)
	}
	checkECWorldSanity(t, cfg, nodes, stats, "tcp-chaos")
	t.Logf("EC seed %d: %d kills, %d reconnects, world sane", seed, kills, reconnects)
}
