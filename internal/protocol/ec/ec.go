// Package ec implements the paper's entry consistency baseline (§2.3, §4):
//
//   - one lock per block object, managed by a lock manager; "the lock
//     managers are distributed evenly and statically amongst the processors
//     in the system" (object k's manager lives on node k mod n);
//   - a process acquires exclusive write-locks on the blocks it may modify
//     (its own block and the four adjacent ones) and shared read-locks on
//     the rest of its visibility set — range 1 means 5 locks per move,
//     range 3 means 13 locks of which 5 are write locks, as in §4;
//   - locks are acquired in ascending object-ID order, the paper's
//     total-order deadlock prevention for applications that lock multiple
//     objects simultaneously;
//   - acquiring a lock "pulls" the up-to-date copy from the owner of the
//     freshest version when the local replica is stale, and a dirty release
//     makes the releaser the new owner.
//
// Each game node runs two processes on the same (simulated) host: the
// application process, and a service process that plays lock manager for
// its share of the objects and serves object-pull requests against the
// node's replica. Both share a mutex-guarded node state.
package ec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdso/internal/game"
	"sdso/internal/lockmgr"
	"sdso/internal/metrics"
	"sdso/internal/store"
	"sdso/internal/trace"
	"sdso/internal/transport"
	"sdso/internal/wire"
)

// NodeConfig assembles one entry-consistency game node.
type NodeConfig struct {
	// Game is the shared application configuration.
	Game game.Config
	// App is the application process's endpoint; its ID in [0, teams) is
	// the team number.
	App transport.Endpoint
	// Svc is the service process's endpoint; its ID must be teams+team.
	Svc transport.Endpoint
	// Metrics receives the node's counters (nil allocates one).
	Metrics *metrics.Collector
	// ComputePerTick models per-iteration application work.
	ComputePerTick time.Duration
	// SuspectTimeout enables crash tolerance: a lock grant, object pull, or
	// ack that stays silent this long marks its source suspected, the
	// request is retransmitted under bounded exponential backoff, and after
	// MaxRetransmits strikes the silent process is declared crashed. The
	// declarer broadcasts KindCrash; every service purges the dead
	// process's locks, and the next live team (scanning up from the dead
	// manager's ID) adopts its lock-manager shard. A lock manager answers a
	// retransmitted request it is still queuing with KindLockBusy naming
	// the current holders, redirecting the requester's suspicion from the
	// live manager to a possibly-dead holder. Zero keeps the fail-free
	// blocking behavior.
	SuspectTimeout time.Duration
	// MaxRetransmits bounds retransmissions per suspicion episode; zero
	// means DefaultMaxRetransmits.
	MaxRetransmits int
	// Rejoin makes this node enter a game already in progress: the
	// application broadcasts KindJoinReq to every service, the node's
	// replica is rebuilt from the responders' KindSnapshot checkpoints, and
	// its lock-manager shard is restored from the adopter's exported
	// records (reversing the crash failover). Requires SuspectTimeout > 0.
	Rejoin bool
	// Incarnation distinguishes successive lives of this team's process ID
	// (used with Rejoin; 1 for a first restart). Crash declarations carry
	// the declarer's known incarnation so announcements that predate a
	// rejoin are recognized as stale and ignored.
	Incarnation int64
	// QuorumF, when > 0, turns each lock-manager shard into a quorum group
	// of 2f+1 services: every dirty release commits its ownership record
	// to f+1 group members before the release's grants go out, and a
	// crashed manager's successor reconstructs the shard's ownership from
	// any f+1 members instead of restarting at version 0 (see quorum.go).
	// Requires SuspectTimeout > 0; zero keeps the unreplicated behavior
	// with no extra messages.
	QuorumF int
	// Debug, when set, receives trace lines (like core.Config.Debug).
	Debug func(string)

	// AppTrace and SvcTrace, when set, record the application's and the
	// service's observation histories (ticks, lock requests/grants/releases,
	// writes) for the consistency oracle in internal/check. Nil disables
	// tracing. Each recorder is appended to only from its own process's
	// goroutine.
	AppTrace *trace.Recorder
	SvcTrace *trace.Recorder
}

// DefaultMaxRetransmits is the eviction threshold used when
// NodeConfig.MaxRetransmits is zero.
const DefaultMaxRetransmits = 3

// Node is one EC participant: an application process and a co-located
// service process sharing a replica and a lock-manager shard.
type Node struct {
	cfg   NodeConfig
	team  int
	teams int
	mc    *metrics.Collector

	mu  sync.Mutex // guards st and mgr (app and svc touch both)
	st  *store.Store
	mgr *lockmgr.Manager

	goal     game.Pos
	tanks    []game.TankState
	stats    game.TeamStats
	gameOver bool

	// crashed marks teams declared crashed (guarded by mu; the app and
	// service processes of a node converge on it independently).
	crashed map[int]bool
	// inc records the highest incarnation seen per team (guarded by mu).
	// Crash declarations carrying an older incarnation are stale — they
	// predate a rejoin — and are ignored.
	inc map[int]int64
	// over mirrors the game-over announcement under mu so the service can
	// report it to joiners (gameOver itself is application-side state).
	over bool

	// Rejoin state (guarded by mu). rejoinPending is true from New until
	// the service has restored the lock-manager shard from the join
	// handbacks; lock traffic for our own shard stalls in joinStalled
	// until then. handback caches the records exported per joining team so
	// a retransmitted join request resends the same payload (a second
	// Export would find nothing).
	rejoinPending bool
	joinAcked     map[int]bool
	joinSnapped   map[int]bool
	joinRecs      map[int][]lockmgr.Record
	joinStalled   []*wire.Msg
	handback      map[int][]byte

	// Quorum replication state (guarded by mu; allocated when QuorumF > 0,
	// see quorum.go). qseq numbers replication and reconstruction rounds;
	// qrep is this service's backup copy of ownership records; qpend holds
	// rounds awaiting backup acks; qAdopt in-progress reconstructions;
	// qAdopted the dead teams whose shards were already reconstructed.
	qseq     int64
	qrep     map[store.ID]qOwnerRec
	qpend    map[int64]*qPending
	qAdopt   map[int]*qAdoptState
	qAdopted map[int]bool
}

// New validates the configuration and builds a node. The caller runs
// RunService and RunApp on separate goroutines (or simulated processes).
func New(cfg NodeConfig) (*Node, error) {
	if cfg.App == nil || cfg.Svc == nil {
		return nil, errors.New("ec: config requires app and svc endpoints")
	}
	teams := cfg.Game.Teams
	if cfg.App.ID() >= teams || cfg.Svc.ID() != teams+cfg.App.ID() {
		return nil, fmt.Errorf("ec: endpoint ids app=%d svc=%d invalid for %d teams",
			cfg.App.ID(), cfg.Svc.ID(), teams)
	}
	if cfg.Rejoin && cfg.SuspectTimeout <= 0 {
		return nil, errors.New("ec: rejoin requires SuspectTimeout (failure detection)")
	}
	if cfg.QuorumF > 0 && cfg.SuspectTimeout <= 0 {
		return nil, errors.New("ec: quorum replication requires SuspectTimeout (it exists for failover)")
	}
	mc := cfg.Metrics
	if mc == nil {
		mc = metrics.NewCollector()
	}
	n := &Node{
		cfg: cfg, team: cfg.App.ID(), teams: teams, mc: mc,
		crashed: make(map[int]bool), inc: make(map[int]int64),
	}
	if cfg.Incarnation > 0 {
		n.inc[n.team] = cfg.Incarnation
	}
	if cfg.QuorumF > 0 {
		n.qrep = make(map[store.ID]qOwnerRec)
		n.qpend = make(map[int64]*qPending)
		n.qAdopt = make(map[int]*qAdoptState)
		n.qAdopted = make(map[int]bool)
	}

	w, err := game.NewWorld(cfg.Game)
	if err != nil {
		return nil, err
	}
	n.goal = w.Goal // the goal block never moves; keep it even if hidden
	if cfg.Rejoin {
		// The world and the tank roster come from peer checkpoints; the
		// lock-manager shard comes back via the join handback.
		n.st = store.New()
		n.mgr = lockmgr.New(nil, nil)
		n.rejoinPending = true
		n.joinAcked = make(map[int]bool)
		n.joinSnapped = make(map[int]bool)
		n.joinRecs = make(map[int][]lockmgr.Record)
		return n, nil
	}
	n.st = w.Encode()
	for _, pos := range w.TankPositions()[n.team] {
		n.tanks = append(n.tanks, game.NewTankState(pos))
	}

	// This node manages the locks for its static shard of the objects.
	n.mgr = lockmgr.New(n.shardOf(n.team), nil)
	return n, nil
}

// shardOf returns the objects whose lock manager statically lives on team.
func (n *Node) shardOf(team int) []store.ID {
	var out []store.ID
	for i := 0; i < n.cfg.Game.NumObjects(); i++ {
		if lockmgr.ManagerFor(store.ID(i), n.teams) == team {
			out = append(out, store.ID(i))
		}
	}
	return out
}

// Stats returns the team's final stats (valid after RunApp returns).
func (n *Node) Stats() game.TeamStats { return n.stats }

// Store exposes the node's replica (for test assertions).
func (n *Node) Store() *store.Store {
	return n.st
}

// svcID returns the service endpoint ID for a team.
func (n *Node) svcID(team int) int { return n.teams + team }

func (n *Node) countSend(ep transport.Endpoint, to int, m *wire.Msg) error {
	n.mc.CountSend(m, m.EncodedSize())
	if err := ep.Send(to, m); err != nil {
		return err
	}
	// EC is request/response shaped: nearly every send immediately precedes
	// a block on Recv, so on transports with deferred flushing the frame
	// must go out now — there is no exchange-round barrier to ride.
	return transport.Flush(ep)
}

// ft reports whether crash tolerance is enabled.
func (n *Node) ft() bool { return n.cfg.SuspectTimeout > 0 }

func (n *Node) tracef(format string, args ...any) {
	if n.cfg.Debug != nil {
		n.cfg.Debug(fmt.Sprintf(format, args...))
	}
}

func (n *Node) maxRetransmits() int {
	if n.cfg.MaxRetransmits > 0 {
		return n.cfg.MaxRetransmits
	}
	return DefaultMaxRetransmits
}

func (n *Node) isCrashed(team int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[team]
}

// noteGameOver records a winner's announcement: gameOver is the
// application-side copy, over the mu-guarded mirror the service reports to
// joiners.
func (n *Node) noteGameOver() {
	n.gameOver = true
	n.mu.Lock()
	n.over = true
	n.mu.Unlock()
}

// crashInc extracts the declarer's known incarnation from a KindCrash
// announcement (0 for declarations predating any rejoin).
func crashInc(m *wire.Msg) int64 {
	if len(m.Ints) > 0 {
		return m.Ints[0]
	}
	return 0
}

// lockProc returns the process a lock request or release acts for: normally
// the sender, but forwarded traffic (re-routed by a manager whose requester
// held a stale crash view) carries the original requester in Stamp+1.
func lockProc(m *wire.Msg) int {
	if m.Stamp > 0 {
		return int(m.Stamp) - 1
	}
	return int(m.Src)
}

// noteCrash records a crash learned from a KindCrash announcement; reports
// whether it was news. A declaration carrying an incarnation older than the
// team's current one predates a rejoin and is ignored.
func (n *Node) noteCrash(team int, inc int64) bool {
	if team < 0 || team >= n.teams || team == n.team {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if inc < n.inc[team] || n.crashed[team] {
		return false
	}
	n.crashed[team] = true
	return true
}

// declareCrash is the detection side: mark team crashed, count the
// eviction, and broadcast KindCrash to every live application and every
// service process (including our own, which purges the dead team's locks
// and adopts its manager shard if it is the successor). Broadcasting before
// any failed-over request is sent matters: per-pair FIFO then guarantees a
// successor manager processes the crash (and adopts the shard) before it
// sees redirected lock traffic from this node. The announcement carries the
// dead team's incarnation as known here, so receivers that have since
// admitted a newer life of the team recognize the declaration as stale.
func (n *Node) declareCrash(team int) {
	n.mu.Lock()
	inc := n.inc[team]
	n.mu.Unlock()
	if !n.noteCrash(team, inc) {
		return
	}
	n.tracef("team %d declares %d crashed (inc %d)", n.team, team, inc)
	n.mc.AddEviction()
	for t := 0; t < n.teams; t++ {
		if t == team {
			continue
		}
		m := &wire.Msg{Kind: wire.KindCrash, Stamp: int64(team), Ints: []int64{inc}}
		if t != n.team && !n.isCrashed(t) {
			_ = n.countSend(n.cfg.App, t, m.Clone())
		}
		_ = n.countSend(n.cfg.App, n.svcID(t), m)
	}
}

// reannounceCrash repeats the KindCrash declaration for an already-buried
// team to one manager service. The original broadcast is sent exactly once
// (declareCrash drops repeat declarations), so a manager whose copy was
// lost would keep serving the dead team's locks forever; the requester that
// notices — its KindLockBusy replies name only holders it knows are dead —
// replays the announcement to that manager alone.
func (n *Node) reannounceCrash(dead, mgrTeam int) {
	n.mu.Lock()
	inc := n.inc[dead]
	n.mu.Unlock()
	n.tracef("app %d re-announces crash of %d (inc %d) to mgr %d", n.team, dead, inc, mgrTeam)
	m := &wire.Msg{Kind: wire.KindCrash, Stamp: int64(dead), Ints: []int64{inc}}
	_ = n.countSend(n.cfg.App, n.svcID(mgrTeam), m)
}

// liveManagerFor returns the team currently managing obj's lock: the static
// base manager, or — after its crash — the next live team scanning up from
// it. Every process computes the successor from its own crashed set; the
// KindCrash broadcast keeps the sets converging.
func (n *Node) liveManagerFor(obj store.ID) int {
	base := lockmgr.ManagerFor(obj, n.teams)
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.teams; i++ {
		t := (base + i) % n.teams
		if !n.crashed[t] {
			return t
		}
	}
	return n.team
}

// adoptShards makes this node's manager adopt the shard of every crashed
// base manager whose live successor it now is. Idempotent; called by the
// service loop after each crash announcement (covers cascaded crashes: if
// an adopter dies too, the next successor re-adopts the whole chain).
func (n *Node) adoptShards() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for dead := 0; dead < n.teams; dead++ {
		if !n.crashed[dead] {
			continue
		}
		succ := -1
		for i := 1; i <= n.teams; i++ {
			t := (dead + i) % n.teams
			if !n.crashed[t] {
				succ = t
				break
			}
		}
		if succ != n.team {
			continue
		}
		var objs []store.ID
		for i := 0; i < n.cfg.Game.NumObjects(); i++ {
			if lockmgr.ManagerFor(store.ID(i), n.teams) == dead {
				objs = append(objs, store.ID(i))
			}
		}
		n.mgr.Adopt(objs, n.team)
	}
}

// routeAction is routeLock's disposition for lock traffic.
type routeAction int

const (
	// routeServe: handle the message at this manager.
	routeServe routeAction = iota
	// routeStall: our own shard is mid-rejoin; the message was queued and
	// will be replayed once the handback restores the shard.
	routeStall
	// routeForward: a live team closer to the object's base manages it;
	// the message was sent on (the sender's crash view was stale).
	routeForward
)

// routeLock decides what to do with a lock request or release for obj.
// Normally the object is managed here and is served. Otherwise the sender
// redirected traffic here believing every team from the object's static
// base manager up to this node has crashed. Three cases:
//
//   - The object is our own shard and the rejoin handback has not landed
//     yet: stall the message until it does (serving from a fresh shard
//     could double-grant a lock whose true holder is in the in-flight
//     handback).
//   - Some team in the chain is live by our (fresher) view — typically a
//     rejoined manager whose return the sender has not yet processed:
//     forward the message to the first live team so it is served by the
//     real manager; the grant goes straight to the original requester.
//   - The whole chain really is crashed: the routing itself carries crash
//     news (a KindCrash announcement lost in transit), so adopt the
//     implied shard chain and serve.
func (n *Node) routeLock(m *wire.Msg) (routeAction, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	obj := store.ID(m.Obj)
	if n.mgr.Manages(obj) {
		return routeServe, 0
	}
	base := lockmgr.ManagerFor(obj, n.teams)
	if base == n.team {
		if n.rejoinPending {
			n.joinStalled = append(n.joinStalled, m)
			return routeStall, 0
		}
		return routeServe, 0
	}
	chain := make(map[int]bool)
	for t := base; t != n.team; t = (t + 1) % n.teams {
		if !n.crashed[t] {
			return routeForward, t
		}
		chain[t] = true
	}
	n.tracef("svc %d adopts shard chain for obj %d (teams %v)", n.team, obj, chain)
	var objs []store.ID
	for i := 0; i < n.cfg.Game.NumObjects(); i++ {
		id := store.ID(i)
		if chain[lockmgr.ManagerFor(id, n.teams)] {
			objs = append(objs, id)
		}
	}
	n.mgr.Adopt(objs, n.team)
	return routeServe, 0
}

// RunService processes lock and object-pull traffic until every
// application process has announced shutdown or been declared crashed.
// Under crash tolerance the service never counts its own co-located
// application as crashed (it is demonstrably alive), and once that
// application has shut down, prolonged total silence lets the service exit
// rather than deadlock on shutdown or crash announcements lost in transit.
func (n *Node) RunService() error {
	svc := n.cfg.Svc
	remaining := n.teams
	handled := make(map[int]bool) // teams counted toward remaining
	idle := 0
	wait := n.cfg.SuspectTimeout
	for remaining > 0 {
		var m *wire.Msg
		var err error
		if n.ft() {
			var ok bool
			m, ok, err = svc.RecvTimeout(wait)
			if err == nil && !ok {
				if !handled[n.team] {
					continue // our app still runs; just keep listening
				}
				idle++
				if idle > n.maxRetransmits() {
					n.tracef("svc %d now=%v idle-exit, remaining %d", n.team, svc.Now(), remaining)
					return nil
				}
				if wait < 8*n.cfg.SuspectTimeout {
					wait *= 2
				}
				continue
			}
			idle = 0
			wait = n.cfg.SuspectTimeout
		} else {
			m, err = svc.Recv()
		}
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ec service %d: %w", n.team, err)
		}
		switch m.Kind {
		case wire.KindLockReq, wire.KindLockRelease:
			if n.ft() {
				act, to := n.routeLock(m)
				if act == routeStall {
					continue
				}
				if act == routeForward {
					if err := n.forwardLock(m, to); err != nil {
						return err
					}
					continue
				}
				// routeLock may have just chain-adopted a dead manager's
				// shard: in quorum mode the ownership must be reconstructed
				// from the group before any of its locks are served.
				if err := n.startAdoptRecon(); err != nil {
					return err
				}
				if n.stallForAdopt(m) {
					continue
				}
			}
			var err error
			if m.Kind == wire.KindLockReq {
				err = n.handleLockReq(m)
			} else {
				err = n.handleLockRelease(m)
			}
			if err != nil {
				return err
			}
		case wire.KindObjReq:
			n.mu.Lock()
			state, errGet := n.st.Get(store.ID(m.Obj))
			ver, _ := n.st.Version(store.ID(m.Obj))
			n.mu.Unlock()
			if errGet != nil {
				return fmt.Errorf("ec service %d: serve obj %d: %w", n.team, m.Obj, errGet)
			}
			reply := &wire.Msg{
				Kind: wire.KindObjReply, Obj: m.Obj, Stamp: m.Stamp,
				Ints: []int64{ver}, Payload: state,
			}
			if err := n.countSend(svc, int(m.Src), reply); err != nil {
				return err
			}
		case wire.KindShutdown:
			if src := int(m.Stamp); !handled[src] {
				handled[src] = true
				remaining--
			}
			n.tracef("svc %d now=%v shutdown from %d, remaining %d", n.team, svc.Now(), m.Stamp, remaining)
		case wire.KindCrash:
			// A crash declaration: stop waiting for the dead team's
			// shutdown, free every lock it held or queued for (granting
			// unblocked waiters), and adopt its manager shard if this node
			// is now the successor.
			dead := int(m.Stamp)
			if dead == n.team {
				// A false declaration about our own co-located (and
				// demonstrably alive) application: purging its locks or
				// abandoning its shutdown would orphan it.
				continue
			}
			fresh := n.noteCrash(dead, crashInc(m))
			if !fresh && !n.isCrashed(dead) {
				continue // stale declaration: the team has since rejoined
			}
			if !handled[dead] {
				handled[dead] = true
				remaining--
			}
			n.mu.Lock()
			grants := n.mgr.PurgeProc(dead)
			n.mu.Unlock()
			if err := n.sendGrants(grants); err != nil {
				return err
			}
			n.adoptShards()
			if err := n.qPurgeDead(dead); err != nil {
				return err
			}
			if err := n.startAdoptRecon(); err != nil {
				return err
			}
			if err := n.finishRejoin(); err != nil {
				return err
			}
		case wire.KindQWrite:
			if err := n.handleQWrite(m); err != nil {
				return err
			}
		case wire.KindQWriteAck:
			if err := n.handleQWriteAck(m); err != nil {
				return err
			}
		case wire.KindQRead:
			if err := n.handleQRead(m); err != nil {
				return err
			}
		case wire.KindQReadAck:
			if err := n.handleQReadAck(m); err != nil {
				return err
			}
		case wire.KindJoinReq:
			if err := n.serveJoin(m, handled, &remaining); err != nil {
				return err
			}
		case wire.KindJoinAck:
			if err := n.acceptJoinAck(m, handled, &remaining); err != nil {
				return err
			}
		case wire.KindSnapshot:
			if err := n.acceptJoinSnapshot(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// handleLockReq serves one lock request at this manager. A retransmitted
// request (ErrDoubleLock) is answered idempotently: the grant is reissued
// if the requester already holds the lock, or KindLockBusy names the
// current holders so the requester blames a possibly-dead holder instead
// of this (live) manager.
func (n *Node) handleLockReq(m *wire.Msg) error {
	svc := n.cfg.Svc
	proc := lockProc(m)
	mode := lockmgr.Read
	if m.Mode == wire.ModeWrite {
		mode = lockmgr.Write
	}
	n.mu.Lock()
	grants, err := n.mgr.Acquire(lockmgr.Request{Proc: proc, Obj: store.ID(m.Obj), Mode: mode})
	if n.ft() && errors.Is(err, lockmgr.ErrDoubleLock) {
		err = nil
		if g, ok := n.mgr.Reissue(proc, store.ID(m.Obj)); ok {
			grants = []lockmgr.Grant{g}
		} else {
			holders, _, _ := n.mgr.Holders(store.ID(m.Obj))
			sort.Ints(holders)
			ints := make([]int64, len(holders))
			for i, h := range holders {
				ints[i] = int64(h)
			}
			busy := &wire.Msg{Kind: wire.KindLockBusy, Obj: m.Obj, Ints: ints}
			n.mu.Unlock()
			if err := n.countSend(svc, proc, busy); err != nil {
				return fmt.Errorf("ec service %d: lock-busy to %d: %w", n.team, proc, err)
			}
			return nil
		}
	}
	n.mu.Unlock()
	if err != nil {
		return fmt.Errorf("ec service %d: acquire obj %d for %d: %w", n.team, m.Obj, proc, err)
	}
	return n.sendGrants(grants)
}

// handleLockRelease serves one lock release at this manager.
func (n *Node) handleLockRelease(m *wire.Msg) error {
	proc := lockProc(m)
	dirty := len(m.Ints) >= 2 && m.Ints[0] == 1
	var version int64
	if dirty {
		version = m.Ints[1]
	}
	var dirtyAux int64
	if dirty {
		dirtyAux = 1
	}
	n.cfg.SvcTrace.Record(trace.OpMgrRelease, proc, int64(m.Obj), version, 0, dirtyAux)
	n.mu.Lock()
	grants, err := n.mgr.Release(proc, store.ID(m.Obj), dirty, version)
	n.mu.Unlock()
	if n.ft() && errors.Is(err, lockmgr.ErrNotHeld) {
		// Releases of locks granted by a manager that has since
		// crashed land on the adopter, which never saw the grant.
		// The holder state died with the old manager: tolerate.
		err = nil
	}
	if err != nil {
		return fmt.Errorf("ec service %d: release obj %d by %d: %w", n.team, m.Obj, proc, err)
	}
	if n.qf() > 0 && dirty {
		// The new ownership must survive this manager's crash: commit it
		// to the quorum group before the unblocked grants go out.
		return n.replicateOwner(store.ID(m.Obj), proc, version, grants)
	}
	return n.sendGrants(grants)
}

// forwardLock sends a misrouted lock message on to the team that actually
// manages the object, tagging it with the original requester (the grant or
// busy reply then goes straight back to them). A forward to a team that
// died in the meantime is dropped: the requester's own retransmission will
// re-route once the crash news reaches it.
func (n *Node) forwardLock(m *wire.Msg, to int) error {
	fm := m.Clone()
	fm.Stamp = int64(lockProc(m)) + 1
	if err := n.countSend(n.cfg.Svc, n.svcID(to), fm); err != nil {
		if errors.Is(err, transport.ErrPeerGone) {
			n.declareCrash(to)
			return nil
		}
		return fmt.Errorf("ec service %d: forward %v obj %d to %d: %w", n.team, m.Kind, m.Obj, to, err)
	}
	n.tracef("svc %d forwards %v obj %d for proc %d to %d", n.team, m.Kind, m.Obj, lockProc(m), to)
	return nil
}

func (n *Node) sendGrants(grants []lockmgr.Grant) error {
	for _, g := range grants {
		mode := wire.ModeRead
		var modeAux int64
		if g.Mode == lockmgr.Write {
			mode = wire.ModeWrite
			modeAux = 1
		}
		n.cfg.SvcTrace.Record(trace.OpMgrGrant, g.Proc, int64(g.Obj), g.Version, 0, modeAux)
		m := &wire.Msg{
			Kind: wire.KindLockGrant, Obj: uint32(g.Obj), Mode: mode,
			Ints: []int64{int64(g.Owner), g.Version},
		}
		if err := n.countSend(n.cfg.Svc, g.Proc, m); err != nil {
			return fmt.Errorf("ec service %d: send grant: %w", n.team, err)
		}
	}
	return nil
}

// serveJoin is the survivor half of the rejoin handshake, run in the
// service loop: clear the joiner's crashed mark, record its incarnation,
// export the part of its lock-manager shard adopted here (reversing the
// crash failover), and answer with a KindJoinAck — game-over flag, crashed
// set, and the exported records — plus a KindSnapshot of the replica. The
// export is cached per team: a retransmitted join request gets the same
// records back (a second Export would find nothing), plus a fresh snapshot.
func (n *Node) serveJoin(m *wire.Msg, handled map[int]bool, remaining *int) error {
	t := int(m.Src)
	if t < 0 || t >= n.teams || t == n.team {
		return nil
	}
	inc := m.Stamp
	n.mu.Lock()
	if inc < n.inc[t] {
		n.mu.Unlock()
		return nil // a request from a previous life, long superseded
	}
	fresh := inc > n.inc[t] || n.handback[t] == nil
	n.inc[t] = inc
	delete(n.crashed, t)
	delete(n.qAdopted, t) // a future crash of the rejoined team reconstructs afresh
	if fresh {
		recs := n.mgr.Export(n.shardOf(t))
		if n.handback == nil {
			n.handback = make(map[int][]byte)
		}
		n.handback[t] = lockmgr.EncodeRecords(recs)
	}
	payload := n.handback[t]
	over := int64(0)
	if n.over {
		over = 1
	}
	ints := []int64{over}
	for c := 0; c < n.teams; c++ {
		if n.crashed[c] {
			ints = append(ints, int64(c))
		}
	}
	snap := n.st.Snapshot(0)
	n.mu.Unlock()
	if handled[t] {
		// The joiner was counted out (crashed); wait for its shutdown again.
		handled[t] = false
		*remaining++
	}
	if fresh {
		n.mc.AddJoin()
		n.tracef("svc %d admits team %d (inc %d): %d handback bytes", n.team, t, inc, len(payload))
	}
	ack := &wire.Msg{Kind: wire.KindJoinAck, Stamp: inc, Ints: ints, Payload: payload}
	if err := n.countSend(n.cfg.Svc, n.svcID(t), ack); err != nil {
		if errors.Is(err, transport.ErrPeerGone) {
			return nil
		}
		return fmt.Errorf("ec service %d: join ack to %d: %w", n.team, t, err)
	}
	n.mc.AddSnapshotBytes(len(snap))
	if err := n.countSend(n.cfg.Svc, n.svcID(t), &wire.Msg{Kind: wire.KindSnapshot, Payload: snap}); err != nil && !errors.Is(err, transport.ErrPeerGone) {
		return fmt.Errorf("ec service %d: snapshot to %d: %w", n.team, t, err)
	}
	return nil
}

// acceptJoinAck is the joiner half, run in the rejoining node's service
// loop: record the responder's handback records and its view of the game
// (game-over flag, crashed set), then try to finish the rejoin.
func (n *Node) acceptJoinAck(m *wire.Msg, handled map[int]bool, remaining *int) error {
	if !n.cfg.Rejoin {
		return nil
	}
	from := int(m.Src) - n.teams
	if from < 0 || from >= n.teams || from == n.team {
		return nil
	}
	recs, err := lockmgr.DecodeRecords(m.Payload)
	if err != nil {
		return nil // corrupt handback; the app's retransmit fetches another
	}
	var newlyCrashed []int
	n.mu.Lock()
	n.joinAcked[from] = true
	n.joinRecs[from] = recs
	delete(n.crashed, from) // the responder is demonstrably alive
	delete(n.qAdopted, from)
	if len(m.Ints) > 0 && m.Ints[0] == 1 {
		n.over = true
	}
	for _, c := range m.Ints[1:] {
		t := int(c)
		if t >= 0 && t < n.teams && t != n.team && t != from && !n.crashed[t] {
			n.crashed[t] = true
			newlyCrashed = append(newlyCrashed, t)
		}
	}
	n.mu.Unlock()
	for _, t := range newlyCrashed {
		if !handled[t] {
			handled[t] = true
			*remaining--
		}
	}
	return n.finishRejoin()
}

// acceptJoinSnapshot merges a responder's checkpoint into the replica,
// version-gated: merging every responder's snapshot makes the union capture
// every surviving write, whichever replica holds the freshest copy of each
// object.
func (n *Node) acceptJoinSnapshot(m *wire.Msg) error {
	if !n.cfg.Rejoin {
		return nil
	}
	from := int(m.Src) - n.teams
	if from < 0 || from >= n.teams || from == n.team {
		return nil
	}
	n.mu.Lock()
	adopted, _, err := n.st.Merge(m.Payload)
	if err == nil {
		n.joinSnapped[from] = true
	}
	n.mu.Unlock()
	if err != nil {
		return nil // corrupt checkpoint is dropped; a retransmission follows
	}
	n.mc.AddCatchupDiffs(adopted)
	return n.finishRejoin()
}

// finishRejoin completes the rejoin once every live team has delivered both
// its ack and its checkpoint: restore the lock-manager shard — handback
// records first (they carry live holders, queues, and ownership), then a
// fresh adopt of whatever remains — and replay the lock traffic that
// stalled while the shard was in flight.
func (n *Node) finishRejoin() error {
	n.mu.Lock()
	if !n.rejoinPending {
		n.mu.Unlock()
		return nil
	}
	for t := 0; t < n.teams; t++ {
		if t == n.team || n.crashed[t] {
			continue
		}
		if !n.joinAcked[t] || !n.joinSnapped[t] {
			n.mu.Unlock()
			return nil
		}
	}
	n.rejoinPending = false
	for t := 0; t < n.teams; t++ {
		if recs := n.joinRecs[t]; len(recs) > 0 {
			n.mgr.Readmit(recs)
		}
	}
	n.mgr.Adopt(n.shardOf(n.team), n.team)
	stalled := n.joinStalled
	n.joinStalled = nil
	n.mu.Unlock()
	n.tracef("svc %d rejoin complete: shard restored, replaying %d stalled messages", n.team, len(stalled))
	for _, sm := range stalled {
		var err error
		switch sm.Kind {
		case wire.KindLockReq:
			err = n.handleLockReq(sm)
		case wire.KindLockRelease:
			err = n.handleLockRelease(sm)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// lockReq is one entry of an iteration's lock set.
type lockReq struct {
	obj   store.ID
	write bool
}

// RunApp executes the team's game loop to completion.
func (n *Node) RunApp() (game.TeamStats, error) {
	app := n.cfg.App
	n.stats = game.TeamStats{Team: n.team}
	defer func() {
		n.mc.SetExecTime(app.Now())
	}()

	if n.cfg.Rejoin {
		if err := n.runJoin(); err != nil {
			return n.stats, err
		}
	}

	for tick := 1; tick <= n.cfg.Game.MaxTicks; tick++ {
		if n.cfg.Game.EndOnFirstGoal {
			// Drain queued winner announcements before paying for locks.
			n.pollApp()
			if n.gameOver {
				n.stats.DoneTick = int64(tick)
				break
			}
		}
		n.tracef("app %d now=%v tick %d", n.team, app.Now(), tick)
		n.cfg.AppTrace.Record(trace.OpTick, -1, 0, 0, int64(tick), 0)
		locks := n.lockSet()
		if err := n.acquireAll(locks); err != nil {
			return n.stats, err
		}

		appStart := app.Now()
		alive := n.refreshTanks()
		if !alive {
			n.releaseAll(locks, nil)
			if !n.stats.ReachedGoal {
				n.stats.Destroyed = true
			}
			n.stats.DoneTick = int64(tick)
			break
		}
		n.stats.Ticks++

		dirty := n.decideAndWrite()
		n.mc.AddTime(metrics.CatAppCompute, app.Now()-appStart)
		if n.cfg.ComputePerTick > 0 {
			app.Compute(n.cfg.ComputePerTick)
			n.mc.AddTime(metrics.CatAppCompute, n.cfg.ComputePerTick)
		}

		n.releaseAll(locks, dirty)

		if n.stats.ReachedGoal && len(n.tanks) == 0 {
			n.stats.DoneTick = int64(tick)
			break
		}
	}
	if n.stats.DoneTick == 0 {
		n.stats.DoneTick = int64(n.stats.Ticks)
	}

	// In a first-to-goal game the winner tells every application the race
	// is over.
	if n.cfg.Game.EndOnFirstGoal && n.stats.ReachedGoal {
		n.noteGameOver() // late joiners asking after this learn it from acks
		for team := 0; team < n.teams; team++ {
			if team == n.team || (n.ft() && n.isCrashed(team)) {
				continue
			}
			m := &wire.Msg{Kind: wire.KindDone, Mode: 1, Stamp: int64(n.team)}
			if err := n.countSend(app, team, m); err != nil {
				if n.ft() && errors.Is(err, transport.ErrPeerGone) {
					n.declareCrash(team)
					continue
				}
				return n.stats, fmt.Errorf("ec app %d: game-over to %d: %w", n.team, team, err)
			}
		}
	}

	// Tell every service process (including our own) that this
	// application is finished. Crashed nodes' services are skipped (their
	// survivors already counted us out via KindCrash if needed).
	for team := 0; team < n.teams; team++ {
		if n.ft() && n.isCrashed(team) {
			continue
		}
		m := &wire.Msg{Kind: wire.KindShutdown, Stamp: int64(n.team)}
		if err := n.countSend(app, n.svcID(team), m); err != nil {
			if n.ft() && errors.Is(err, transport.ErrPeerGone) {
				continue
			}
			return n.stats, fmt.Errorf("ec app %d: shutdown to %d: %w", n.team, team, err)
		}
	}
	return n.stats, nil
}

// runJoin is the application half of a rejoin: broadcast KindJoinReq to
// every other team's service, then wait — retransmitting under backoff —
// until every team has either delivered its ack and checkpoint (tracked by
// our own service) or been declared crashed. The service restores the
// replica and the lock shard; here we only drive retransmission and then
// recover the tank roster from the merged world. Tanks destroyed while the
// process was away are simply absent from the board.
func (n *Node) runJoin() error {
	app := n.cfg.App
	req := &wire.Msg{Kind: wire.KindJoinReq, Stamp: n.cfg.Incarnation}
	var targets []int
	for t := 0; t < n.teams; t++ {
		if t != n.team {
			targets = append(targets, t)
		}
	}
	unresolved := func() []int {
		n.mu.Lock()
		defer n.mu.Unlock()
		var out []int
		for _, t := range targets {
			if !n.crashed[t] && !(n.joinAcked[t] && n.joinSnapped[t]) {
				out = append(out, t)
			}
		}
		return out
	}
	send := func(t int) error {
		if err := n.countSend(app, n.svcID(t), req.Clone()); err != nil {
			if errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(t)
				return nil
			}
			return fmt.Errorf("ec app %d: join req to %d: %w", n.team, t, err)
		}
		return nil
	}
	for _, t := range targets {
		if err := send(t); err != nil {
			return err
		}
	}
	timeout := n.cfg.SuspectTimeout
	wait := timeout
	retries := 0
	for len(unresolved()) > 0 {
		m, ok, err := app.RecvTimeout(wait)
		if err != nil {
			return fmt.Errorf("ec app %d: join wait: %w", n.team, err)
		}
		if ok {
			n.joinAppMsg(m)
			continue
		}
		retries++
		if retries > n.maxRetransmits() {
			// Non-responders are presumed dead; the join completes among
			// whoever answered.
			for _, t := range unresolved() {
				n.declareCrash(t)
			}
			break
		}
		for _, t := range unresolved() {
			if err := send(t); err != nil {
				return err
			}
			n.mc.AddRetransmit()
		}
		if wait < 8*timeout {
			wait *= 2
		}
	}
	// The service flips rejoinPending once every handback and checkpoint is
	// in (our evictions above reach it as KindCrash); wait for that so the
	// world below is complete.
	for {
		n.mu.Lock()
		pending := n.rejoinPending
		n.mu.Unlock()
		if !pending {
			break
		}
		m, ok, err := app.RecvTimeout(timeout)
		if err != nil {
			return fmt.Errorf("ec app %d: join wait: %w", n.team, err)
		}
		if ok {
			n.joinAppMsg(m)
		}
	}
	n.mu.Lock()
	acks := len(n.joinAcked)
	if n.over {
		n.gameOver = true
	}
	var w *game.World
	var err error
	if acks > 0 {
		w, err = game.DecodeWorld(n.cfg.Game, n.st)
	}
	n.mu.Unlock()
	if acks == 0 {
		return fmt.Errorf("ec app %d: rejoin found no live peers", n.team)
	}
	if err != nil {
		return fmt.Errorf("ec app %d: decode joined world: %w", n.team, err)
	}
	for _, pos := range w.TankPositions()[n.team] {
		n.tanks = append(n.tanks, game.NewTankState(pos))
	}
	n.mc.AddJoin()
	n.tracef("app %d rejoined (inc %d): %d acks, %d tanks", n.team, n.cfg.Incarnation, acks, len(n.tanks))
	return nil
}

// joinAppMsg handles application-endpoint traffic arriving mid-join (only
// winner announcements and crash declarations are expected).
func (n *Node) joinAppMsg(m *wire.Msg) {
	switch m.Kind {
	case wire.KindDone:
		n.noteGameOver()
	case wire.KindCrash:
		n.noteCrash(int(m.Stamp), crashInc(m))
	}
}

// pollApp drains queued application-endpoint traffic without blocking
// (between iterations the only expected messages are winner announcements).
func (n *Node) pollApp() {
	for {
		m, ok, err := n.cfg.App.TryRecv()
		if err != nil || !ok {
			return
		}
		if m.Kind == wire.KindDone {
			n.noteGameOver()
		}
		if m.Kind == wire.KindCrash {
			n.noteCrash(int(m.Stamp), crashInc(m))
		}
	}
}

// lockSet computes this iteration's lock requests: write locks on each
// tank's block and the four adjacent blocks, read locks on the rest of the
// visibility set, ascending object order (deadlock prevention).
func (n *Node) lockSet() []lockReq {
	cfg := n.cfg.Game
	want := make(map[store.ID]bool) // id -> write?
	addVis := func(p game.Pos, write bool) {
		if !cfg.InBounds(p) {
			return
		}
		id := cfg.ObjectOf(p)
		if write {
			want[id] = true
		} else if _, ok := want[id]; !ok {
			want[id] = false
		}
	}
	for _, tank := range n.tanks {
		addVis(tank.Pos, true)
		dirs := []game.Pos{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
		for _, d := range dirs {
			addVis(game.Pos{X: tank.Pos.X + d.X, Y: tank.Pos.Y + d.Y}, true)
			for k := 2; k <= cfg.Range; k++ {
				addVis(game.Pos{X: tank.Pos.X + d.X*k, Y: tank.Pos.Y + d.Y*k}, false)
			}
		}
	}
	out := make([]lockReq, 0, len(want))
	for id, write := range want {
		out = append(out, lockReq{obj: id, write: write})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj < out[j].obj })
	return out
}

// acquireAll acquires the lock set in order, pulling fresh copies as grants
// reveal newer versions elsewhere.
func (n *Node) acquireAll(locks []lockReq) error {
	for _, lr := range locks {
		if err := n.acquireOne(lr); err != nil {
			return err
		}
	}
	return nil
}

// acquireOne acquires one lock, failing over to the successor manager and
// purging dead holders when crash tolerance is on.
func (n *Node) acquireOne(lr lockReq) error {
	app := n.cfg.App
	mode := wire.ModeRead
	if lr.write {
		mode = wire.ModeWrite
	}
	mgrTeam := lockmgr.ManagerFor(lr.obj, n.teams)
	if n.ft() {
		mgrTeam = n.liveManagerFor(lr.obj)
	}
	var modeAux int64
	if lr.write {
		modeAux = 1
	}
	n.cfg.AppTrace.Record(trace.OpLockReq, mgrTeam, int64(lr.obj), 0, 0, modeAux)
	req := &wire.Msg{Kind: wire.KindLockReq, Obj: uint32(lr.obj), Mode: mode}
	t0 := app.Now()
	if err := n.countSend(app, n.svcID(mgrTeam), req); err != nil {
		if n.ft() && errors.Is(err, transport.ErrPeerGone) {
			n.declareCrash(mgrTeam)
			return n.acquireOne(lr)
		}
		return fmt.Errorf("ec app %d: lock req %d: %w", n.team, lr.obj, err)
	}
	var grant *wire.Msg
	var err error
	if n.ft() {
		grant, err = n.awaitGrantFT(lr.obj, req, mgrTeam)
	} else {
		grant, err = n.awaitKind(wire.KindLockGrant, uint32(lr.obj))
	}
	if err != nil {
		return err
	}
	n.mc.AddTime(metrics.CatLockAcquire, app.Now()-t0)

	owner, version := int(grant.Ints[0]), grant.Ints[1]
	n.cfg.AppTrace.Record(trace.OpLockGranted, owner, int64(lr.obj), version, 0, modeAux)
	n.mu.Lock()
	local, _ := n.st.Version(lr.obj)
	n.mu.Unlock()
	if version > local && owner != n.team && !(n.ft() && n.isCrashed(owner)) {
		t1 := app.Now()
		pull := &wire.Msg{Kind: wire.KindObjReq, Obj: uint32(lr.obj), Stamp: int64(lr.obj)}
		if err := n.countSend(app, n.svcID(owner), pull); err != nil {
			if n.ft() && errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(owner)
				return nil // local replica stands in for the lost copy
			}
			return fmt.Errorf("ec app %d: pull %d: %w", n.team, lr.obj, err)
		}
		var reply *wire.Msg
		if n.ft() {
			var ok bool
			reply, ok, err = n.awaitPullFT(lr.obj, pull, owner)
			if err != nil {
				return err
			}
			if !ok {
				// The owner crashed before serving the pull; its latest
				// writes are lost (fail-stop) and the local replica is
				// the freshest surviving copy.
				n.mc.AddTime(metrics.CatObjPull, app.Now()-t1)
				return nil
			}
		} else {
			reply, err = n.awaitKind(wire.KindObjReply, uint32(lr.obj))
			if err != nil {
				return err
			}
		}
		n.mu.Lock()
		err = n.st.SetState(lr.obj, reply.Payload, reply.Ints[0])
		n.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ec app %d: apply pulled %d: %w", n.team, lr.obj, err)
		}
		n.mc.AddTime(metrics.CatObjPull, app.Now()-t1)
	}
	return nil
}

// awaitKind blocks until a message of the wanted kind for the wanted object
// arrives. The application has at most one outstanding request, so no other
// traffic can interleave.
func (n *Node) awaitKind(kind wire.Kind, obj uint32) (*wire.Msg, error) {
	for {
		m, err := n.cfg.App.Recv()
		if err != nil {
			return nil, fmt.Errorf("ec app %d: await %v: %w", n.team, kind, err)
		}
		if m.Kind == kind && m.Obj == obj {
			return m, nil
		}
		if m.Kind == wire.KindDone {
			// A winner's announcement arriving mid-acquire: note it and
			// keep waiting for the expected grant (locks are still
			// released properly at the end of the iteration).
			n.noteGameOver()
			continue
		}
		if m.Kind == wire.KindCrash {
			n.noteCrash(int(m.Stamp), crashInc(m))
			continue
		}
		// Unexpected traffic (e.g. a duplicate) is dropped.
	}
}

// awaitGrantFT waits for the grant of obj with failure detection. Silence
// past the suspicion timeout retransmits the request under bounded
// exponential backoff; exhausted retries declare the current suspect — the
// manager, or (after a KindLockBusy hint) a lock holder — crashed, and the
// wait restarts against the recovered state: a dead manager's successor is
// re-asked, a dead holder's purge lets the (live) manager grant.
func (n *Node) awaitGrantFT(obj store.ID, req *wire.Msg, mgrTeam int) (*wire.Msg, error) {
	app := n.cfg.App
	timeout := n.cfg.SuspectTimeout
	wait := timeout
	retries := 0
	suspect := mgrTeam
	suspectIsHolder := false
	failover := func() error {
		mgrTeam = n.liveManagerFor(obj)
		suspect = mgrTeam
		suspectIsHolder = false
		retries = 0
		wait = timeout
		n.tracef("app %d now=%v obj=%d failover to mgr %d", n.team, app.Now(), obj, mgrTeam)
		if err := n.countSend(app, n.svcID(mgrTeam), req.Clone()); err != nil {
			return fmt.Errorf("ec app %d: failover lock req %d to %d: %w", n.team, obj, mgrTeam, err)
		}
		n.mc.AddRetransmit()
		return nil
	}
	for {
		m, ok, err := app.RecvTimeout(wait)
		if err != nil {
			return nil, fmt.Errorf("ec app %d: await grant %d: %w", n.team, obj, err)
		}
		if ok {
			switch {
			case m.Kind == wire.KindLockGrant && m.Obj == uint32(obj):
				return m, nil
			case m.Kind == wire.KindLockBusy && m.Obj == uint32(obj):
				// The manager is alive but the lock is held elsewhere:
				// blame the first live foreign holder instead.
				blamed := false
				for _, h := range m.Ints {
					if int(h) != n.team && !n.isCrashed(int(h)) {
						suspect = int(h)
						suspectIsHolder = true
						blamed = true
						break
					}
				}
				if !blamed {
					// Every foreign holder named is already buried in our
					// view, yet the manager still serves their locks: its
					// copy of the KindCrash broadcast was lost, and
					// declareCrash won't repeat old news. Re-announce the
					// burials to this manager so it purges the phantom
					// holders and grants the queued request.
					for _, h := range m.Ints {
						if int(h) != n.team && n.isCrashed(int(h)) {
							n.reannounceCrash(int(h), mgrTeam)
						}
					}
				}
			case m.Kind == wire.KindDone:
				n.noteGameOver()
			case m.Kind == wire.KindCrash:
				n.noteCrash(int(m.Stamp), crashInc(m))
				if int(m.Stamp) == mgrTeam && n.isCrashed(mgrTeam) {
					// Someone else buried our manager; fail over now.
					if err := failover(); err != nil {
						return nil, err
					}
				}
			}
			continue
		}
		if retries == 0 {
			n.mc.AddSuspect()
		}
		retries++
		if cur := n.liveManagerFor(obj); cur != mgrTeam {
			// The routing changed beneath us — a crash learned through
			// another exchange, or the base manager rejoined. Re-aim at
			// the current manager before spending the retry budget on the
			// wrong one.
			mgrTeam = cur
			suspect = cur
			suspectIsHolder = false
		}
		n.tracef("app %d now=%v obj=%d grant-wait timeout #%d suspect=%d holder=%v",
			n.team, app.Now(), obj, retries, suspect, suspectIsHolder)
		if retries > n.maxRetransmits() {
			n.declareCrash(suspect)
			if suspectIsHolder {
				// The manager outlives the holder: its purge on KindCrash
				// will grant us the lock. Resume suspecting the manager.
				suspect = mgrTeam
				suspectIsHolder = false
				retries = 0
				wait = timeout
				continue
			}
			if err := failover(); err != nil {
				return nil, err
			}
			continue
		}
		if err := n.countSend(app, n.svcID(mgrTeam), req.Clone()); err != nil {
			if errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(mgrTeam)
				if err := failover(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("ec app %d: retransmit lock req %d: %w", n.team, obj, err)
		}
		n.mc.AddRetransmit()
		if wait < 8*timeout {
			wait *= 2
		}
	}
}

// awaitPullFT waits for an object-pull reply with failure detection. ok is
// false when the owner was declared crashed instead of answering — the
// caller falls back to its local replica.
func (n *Node) awaitPullFT(obj store.ID, req *wire.Msg, owner int) (*wire.Msg, bool, error) {
	app := n.cfg.App
	timeout := n.cfg.SuspectTimeout
	wait := timeout
	retries := 0
	for {
		m, ok, err := app.RecvTimeout(wait)
		if err != nil {
			return nil, false, fmt.Errorf("ec app %d: await pull %d: %w", n.team, obj, err)
		}
		if ok {
			switch {
			case m.Kind == wire.KindObjReply && m.Obj == uint32(obj):
				return m, true, nil
			case m.Kind == wire.KindDone:
				n.noteGameOver()
			case m.Kind == wire.KindCrash:
				n.noteCrash(int(m.Stamp), crashInc(m))
				if int(m.Stamp) == owner && n.isCrashed(owner) {
					return nil, false, nil
				}
			}
			continue
		}
		if retries == 0 {
			n.mc.AddSuspect()
		}
		retries++
		if retries > n.maxRetransmits() {
			n.declareCrash(owner)
			return nil, false, nil
		}
		if err := n.countSend(app, n.svcID(owner), req.Clone()); err != nil {
			if errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(owner)
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("ec app %d: retransmit pull %d: %w", n.team, obj, err)
		}
		n.mc.AddRetransmit()
		if wait < 8*timeout {
			wait *= 2
		}
	}
}

// releaseAll returns every lock; written objects release dirty with their
// new version, transferring ownership.
func (n *Node) releaseAll(locks []lockReq, dirty map[store.ID]int64) {
	app := n.cfg.App
	t0 := app.Now()
	for _, lr := range locks {
		mgrTeam := lockmgr.ManagerFor(lr.obj, n.teams)
		if n.ft() {
			mgrTeam = n.liveManagerFor(lr.obj)
		}
		rel := &wire.Msg{Kind: wire.KindLockRelease, Obj: uint32(lr.obj)}
		if v, ok := dirty[lr.obj]; ok && lr.write {
			rel.Ints = []int64{1, v}
			n.cfg.AppTrace.Record(trace.OpLockRel, mgrTeam, int64(lr.obj), v, 0, 1)
		} else {
			rel.Ints = []int64{0, 0}
			n.cfg.AppTrace.Record(trace.OpLockRel, mgrTeam, int64(lr.obj), 0, 0, 0)
		}
		// Releases are asynchronous; errors only surface via metrics
		// divergence in tests.
		_ = n.countSend(app, n.svcID(mgrTeam), rel)
	}
	n.mc.AddTime(metrics.CatLockRelease, app.Now()-t0)
}

// refreshTanks drops destroyed tanks; reports whether any remain.
func (n *Node) refreshTanks() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive := n.tanks[:0]
	for _, tank := range n.tanks {
		b, err := n.st.View(n.cfg.Game.ObjectOf(tank.Pos))
		if err != nil {
			continue
		}
		c, err := game.DecodeCell(b)
		if err == nil && c.Kind == game.Tank && c.Team == n.team {
			alive = append(alive, tank)
		}
	}
	n.tanks = alive
	return len(n.tanks) > 0
}

// decideAndWrite runs the decision function on the freshly locked state and
// applies the writes; returns the dirty object versions.
func (n *Node) decideAndWrite() map[store.ID]int64 {
	cfg := n.cfg.Game
	n.mu.Lock()
	defer n.mu.Unlock()

	cellAt := func(p game.Pos) game.Cell {
		b, err := n.st.View(cfg.ObjectOf(p))
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		c, err := game.DecodeCell(b)
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		return c
	}
	// Enemy positions come from the locked visibility cells (EC has no
	// beacons; the locks themselves guarantee freshness).
	enemies := make(map[int][]game.Pos)
	for _, tank := range n.tanks {
		dirs := []game.Pos{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
		for _, d := range dirs {
			for k := 1; k <= cfg.Range; k++ {
				p := game.Pos{X: tank.Pos.X + d.X*k, Y: tank.Pos.Y + d.Y*k}
				if !cfg.InBounds(p) {
					break
				}
				if c := cellAt(p); c.Kind == game.Tank && c.Team != n.team {
					enemies[c.Team] = append(enemies[c.Team], p)
				}
			}
		}
	}

	dirty := make(map[store.ID]int64)
	modified := false
	var next []game.TankState
	for _, tank := range n.tanks {
		act := game.Decide(game.View{
			Cfg:     cfg,
			Team:    n.team,
			Self:    tank.Pos,
			Prev:    tank.Prev,
			Goal:    n.goal,
			CellAt:  cellAt,
			Enemies: enemies,
		})
		var prevTarget game.Cell
		if act.Kind == game.Move {
			prevTarget = cellAt(act.To)
		}
		writes, reachedGoal := act.Writes(n.team, n.goal)
		for _, cw := range writes {
			id := cfg.ObjectOf(cw.Pos)
			if _, err := n.st.UpdateBy(id, game.EncodeCell(cw.Cell), n.team); err != nil {
				continue
			}
			v, _ := n.st.Version(id)
			n.cfg.AppTrace.Record(trace.OpWrite, n.team, int64(id), v, 0, 0)
			dirty[id] = v
			modified = true
		}
		switch {
		case reachedGoal:
			n.stats.ReachedGoal = true
			n.stats.Score += 5
		case act.Kind == game.Move:
			if prevTarget.Kind == game.Bonus {
				n.stats.Score++
			}
			next = append(next, tank.Advance(act))
		default:
			next = append(next, tank)
		}
	}
	if modified {
		n.stats.Mods++
		n.mc.AddMod()
	}
	n.mc.AddTick()
	n.tanks = next
	return dirty
}
