// Package ec implements the paper's entry consistency baseline (§2.3, §4):
//
//   - one lock per block object, managed by a lock manager; "the lock
//     managers are distributed evenly and statically amongst the processors
//     in the system" (object k's manager lives on node k mod n);
//   - a process acquires exclusive write-locks on the blocks it may modify
//     (its own block and the four adjacent ones) and shared read-locks on
//     the rest of its visibility set — range 1 means 5 locks per move,
//     range 3 means 13 locks of which 5 are write locks, as in §4;
//   - locks are acquired in ascending object-ID order, the paper's
//     total-order deadlock prevention for applications that lock multiple
//     objects simultaneously;
//   - acquiring a lock "pulls" the up-to-date copy from the owner of the
//     freshest version when the local replica is stale, and a dirty release
//     makes the releaser the new owner.
//
// Each game node runs two processes on the same (simulated) host: the
// application process, and a service process that plays lock manager for
// its share of the objects and serves object-pull requests against the
// node's replica. Both share a mutex-guarded node state.
package ec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdso/internal/game"
	"sdso/internal/lockmgr"
	"sdso/internal/metrics"
	"sdso/internal/store"
	"sdso/internal/transport"
	"sdso/internal/wire"
)

// NodeConfig assembles one entry-consistency game node.
type NodeConfig struct {
	// Game is the shared application configuration.
	Game game.Config
	// App is the application process's endpoint; its ID in [0, teams) is
	// the team number.
	App transport.Endpoint
	// Svc is the service process's endpoint; its ID must be teams+team.
	Svc transport.Endpoint
	// Metrics receives the node's counters (nil allocates one).
	Metrics *metrics.Collector
	// ComputePerTick models per-iteration application work.
	ComputePerTick time.Duration
	// SuspectTimeout enables crash tolerance: a lock grant, object pull, or
	// ack that stays silent this long marks its source suspected, the
	// request is retransmitted under bounded exponential backoff, and after
	// MaxRetransmits strikes the silent process is declared crashed. The
	// declarer broadcasts KindCrash; every service purges the dead
	// process's locks, and the next live team (scanning up from the dead
	// manager's ID) adopts its lock-manager shard. A lock manager answers a
	// retransmitted request it is still queuing with KindLockBusy naming
	// the current holders, redirecting the requester's suspicion from the
	// live manager to a possibly-dead holder. Zero keeps the fail-free
	// blocking behavior.
	SuspectTimeout time.Duration
	// MaxRetransmits bounds retransmissions per suspicion episode; zero
	// means DefaultMaxRetransmits.
	MaxRetransmits int
	// Debug, when set, receives trace lines (like core.Config.Debug).
	Debug func(string)
}

// DefaultMaxRetransmits is the eviction threshold used when
// NodeConfig.MaxRetransmits is zero.
const DefaultMaxRetransmits = 3

// Node is one EC participant: an application process and a co-located
// service process sharing a replica and a lock-manager shard.
type Node struct {
	cfg   NodeConfig
	team  int
	teams int
	mc    *metrics.Collector

	mu  sync.Mutex // guards st and mgr (app and svc touch both)
	st  *store.Store
	mgr *lockmgr.Manager

	goal     game.Pos
	tanks    []game.TankState
	stats    game.TeamStats
	gameOver bool

	// crashed marks teams declared crashed (guarded by mu; the app and
	// service processes of a node converge on it independently).
	crashed map[int]bool
}

// New validates the configuration and builds a node. The caller runs
// RunService and RunApp on separate goroutines (or simulated processes).
func New(cfg NodeConfig) (*Node, error) {
	if cfg.App == nil || cfg.Svc == nil {
		return nil, errors.New("ec: config requires app and svc endpoints")
	}
	teams := cfg.Game.Teams
	if cfg.App.ID() >= teams || cfg.Svc.ID() != teams+cfg.App.ID() {
		return nil, fmt.Errorf("ec: endpoint ids app=%d svc=%d invalid for %d teams",
			cfg.App.ID(), cfg.Svc.ID(), teams)
	}
	mc := cfg.Metrics
	if mc == nil {
		mc = metrics.NewCollector()
	}
	n := &Node{cfg: cfg, team: cfg.App.ID(), teams: teams, mc: mc, crashed: make(map[int]bool)}

	w, err := game.NewWorld(cfg.Game)
	if err != nil {
		return nil, err
	}
	n.goal = w.Goal
	n.st = w.Encode()
	for _, pos := range w.TankPositions()[n.team] {
		n.tanks = append(n.tanks, game.NewTankState(pos))
	}

	// This node manages the locks for its static shard of the objects.
	var managed []store.ID
	for i := 0; i < cfg.Game.NumObjects(); i++ {
		if lockmgr.ManagerFor(store.ID(i), teams) == n.team {
			managed = append(managed, store.ID(i))
		}
	}
	n.mgr = lockmgr.New(managed, nil)
	return n, nil
}

// Stats returns the team's final stats (valid after RunApp returns).
func (n *Node) Stats() game.TeamStats { return n.stats }

// Store exposes the node's replica (for test assertions).
func (n *Node) Store() *store.Store {
	return n.st
}

// svcID returns the service endpoint ID for a team.
func (n *Node) svcID(team int) int { return n.teams + team }

func (n *Node) countSend(ep transport.Endpoint, to int, m *wire.Msg) error {
	n.mc.CountSend(m, m.EncodedSize())
	return ep.Send(to, m)
}

// ft reports whether crash tolerance is enabled.
func (n *Node) ft() bool { return n.cfg.SuspectTimeout > 0 }

func (n *Node) tracef(format string, args ...any) {
	if n.cfg.Debug != nil {
		n.cfg.Debug(fmt.Sprintf(format, args...))
	}
}

func (n *Node) maxRetransmits() int {
	if n.cfg.MaxRetransmits > 0 {
		return n.cfg.MaxRetransmits
	}
	return DefaultMaxRetransmits
}

func (n *Node) isCrashed(team int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[team]
}

// noteCrash records a crash learned from a KindCrash announcement; reports
// whether it was news.
func (n *Node) noteCrash(team int) bool {
	if team < 0 || team >= n.teams || team == n.team {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[team] {
		return false
	}
	n.crashed[team] = true
	return true
}

// declareCrash is the detection side: mark team crashed, count the
// eviction, and broadcast KindCrash to every live application and every
// service process (including our own, which purges the dead team's locks
// and adopts its manager shard if it is the successor). Broadcasting before
// any failed-over request is sent matters: per-pair FIFO then guarantees a
// successor manager processes the crash (and adopts the shard) before it
// sees redirected lock traffic from this node.
func (n *Node) declareCrash(team int) {
	if !n.noteCrash(team) {
		return
	}
	n.tracef("team %d declares %d crashed", n.team, team)
	n.mc.AddEviction()
	for t := 0; t < n.teams; t++ {
		if t == team {
			continue
		}
		m := &wire.Msg{Kind: wire.KindCrash, Stamp: int64(team)}
		if t != n.team && !n.isCrashed(t) {
			_ = n.countSend(n.cfg.App, t, m.Clone())
		}
		_ = n.countSend(n.cfg.App, n.svcID(t), m)
	}
}

// liveManagerFor returns the team currently managing obj's lock: the static
// base manager, or — after its crash — the next live team scanning up from
// it. Every process computes the successor from its own crashed set; the
// KindCrash broadcast keeps the sets converging.
func (n *Node) liveManagerFor(obj store.ID) int {
	base := lockmgr.ManagerFor(obj, n.teams)
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.teams; i++ {
		t := (base + i) % n.teams
		if !n.crashed[t] {
			return t
		}
	}
	return n.team
}

// adoptShards makes this node's manager adopt the shard of every crashed
// base manager whose live successor it now is. Idempotent; called by the
// service loop after each crash announcement (covers cascaded crashes: if
// an adopter dies too, the next successor re-adopts the whole chain).
func (n *Node) adoptShards() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for dead := 0; dead < n.teams; dead++ {
		if !n.crashed[dead] {
			continue
		}
		succ := -1
		for i := 1; i <= n.teams; i++ {
			t := (dead + i) % n.teams
			if !n.crashed[t] {
				succ = t
				break
			}
		}
		if succ != n.team {
			continue
		}
		var objs []store.ID
		for i := 0; i < n.cfg.Game.NumObjects(); i++ {
			if lockmgr.ManagerFor(store.ID(i), n.teams) == dead {
				objs = append(objs, store.ID(i))
			}
		}
		n.mgr.Adopt(objs, n.team)
	}
}

// adoptChainFor handles a lock request or release for an object this manager
// does not manage: the sender redirects traffic here only after concluding
// that every team from the object's static base manager up to this node has
// crashed, so the routing itself carries crash news — news the KindCrash
// announcement that normally precedes redirected traffic failed to deliver
// (lost on a lossy link). Adopt the implied shard chain so the request can
// be served instead of erroring out. No-op when the object is already
// managed here.
func (n *Node) adoptChainFor(obj store.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mgr.Manages(obj) {
		return
	}
	base := lockmgr.ManagerFor(obj, n.teams)
	chain := make(map[int]bool)
	for t := base; t != n.team; t = (t + 1) % n.teams {
		chain[t] = true
	}
	if len(chain) == 0 {
		return
	}
	n.tracef("svc %d adopts shard chain for obj %d (teams %v)", n.team, obj, chain)
	var objs []store.ID
	for i := 0; i < n.cfg.Game.NumObjects(); i++ {
		id := store.ID(i)
		if chain[lockmgr.ManagerFor(id, n.teams)] {
			objs = append(objs, id)
		}
	}
	n.mgr.Adopt(objs, n.team)
}

// RunService processes lock and object-pull traffic until every
// application process has announced shutdown or been declared crashed.
// Under crash tolerance the service never counts its own co-located
// application as crashed (it is demonstrably alive), and once that
// application has shut down, prolonged total silence lets the service exit
// rather than deadlock on shutdown or crash announcements lost in transit.
func (n *Node) RunService() error {
	svc := n.cfg.Svc
	remaining := n.teams
	handled := make(map[int]bool) // teams counted toward remaining
	idle := 0
	wait := n.cfg.SuspectTimeout
	for remaining > 0 {
		var m *wire.Msg
		var err error
		if n.ft() {
			var ok bool
			m, ok, err = svc.RecvTimeout(wait)
			if err == nil && !ok {
				if !handled[n.team] {
					continue // our app still runs; just keep listening
				}
				idle++
				if idle > n.maxRetransmits() {
					n.tracef("svc %d now=%v idle-exit, remaining %d", n.team, svc.Now(), remaining)
					return nil
				}
				if wait < 8*n.cfg.SuspectTimeout {
					wait *= 2
				}
				continue
			}
			idle = 0
			wait = n.cfg.SuspectTimeout
		} else {
			m, err = svc.Recv()
		}
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ec service %d: %w", n.team, err)
		}
		switch m.Kind {
		case wire.KindLockReq:
			mode := lockmgr.Read
			if m.Mode == wire.ModeWrite {
				mode = lockmgr.Write
			}
			if n.ft() {
				n.adoptChainFor(store.ID(m.Obj))
			}
			n.mu.Lock()
			grants, err := n.mgr.Acquire(lockmgr.Request{Proc: int(m.Src), Obj: store.ID(m.Obj), Mode: mode})
			if n.ft() && errors.Is(err, lockmgr.ErrDoubleLock) {
				// A retransmitted request. If the requester already holds
				// the lock, the original grant was lost: reissue it. If it
				// is still queued, answer KindLockBusy naming the current
				// holders so the requester blames a possibly-dead holder
				// instead of this (live) manager.
				err = nil
				if g, ok := n.mgr.Reissue(int(m.Src), store.ID(m.Obj)); ok {
					grants = []lockmgr.Grant{g}
				} else {
					holders, _, _ := n.mgr.Holders(store.ID(m.Obj))
					sort.Ints(holders)
					ints := make([]int64, len(holders))
					for i, h := range holders {
						ints[i] = int64(h)
					}
					busy := &wire.Msg{Kind: wire.KindLockBusy, Obj: m.Obj, Ints: ints}
					n.mu.Unlock()
					if err := n.countSend(svc, int(m.Src), busy); err != nil {
						return fmt.Errorf("ec service %d: lock-busy to %d: %w", n.team, m.Src, err)
					}
					continue
				}
			}
			n.mu.Unlock()
			if err != nil {
				return fmt.Errorf("ec service %d: acquire obj %d for %d: %w", n.team, m.Obj, m.Src, err)
			}
			if err := n.sendGrants(grants); err != nil {
				return err
			}
		case wire.KindLockRelease:
			dirty := len(m.Ints) >= 2 && m.Ints[0] == 1
			var version int64
			if dirty {
				version = m.Ints[1]
			}
			if n.ft() {
				n.adoptChainFor(store.ID(m.Obj))
			}
			n.mu.Lock()
			grants, err := n.mgr.Release(int(m.Src), store.ID(m.Obj), dirty, version)
			n.mu.Unlock()
			if n.ft() && errors.Is(err, lockmgr.ErrNotHeld) {
				// Releases of locks granted by a manager that has since
				// crashed land on the adopter, which never saw the grant.
				// The holder state died with the old manager: tolerate.
				err = nil
			}
			if err != nil {
				return fmt.Errorf("ec service %d: release obj %d by %d: %w", n.team, m.Obj, m.Src, err)
			}
			if err := n.sendGrants(grants); err != nil {
				return err
			}
		case wire.KindObjReq:
			n.mu.Lock()
			state, errGet := n.st.Get(store.ID(m.Obj))
			ver, _ := n.st.Version(store.ID(m.Obj))
			n.mu.Unlock()
			if errGet != nil {
				return fmt.Errorf("ec service %d: serve obj %d: %w", n.team, m.Obj, errGet)
			}
			reply := &wire.Msg{
				Kind: wire.KindObjReply, Obj: m.Obj, Stamp: m.Stamp,
				Ints: []int64{ver}, Payload: state,
			}
			if err := n.countSend(svc, int(m.Src), reply); err != nil {
				return err
			}
		case wire.KindShutdown:
			if src := int(m.Stamp); !handled[src] {
				handled[src] = true
				remaining--
			}
			n.tracef("svc %d now=%v shutdown from %d, remaining %d", n.team, svc.Now(), m.Stamp, remaining)
		case wire.KindCrash:
			// A crash declaration: stop waiting for the dead team's
			// shutdown, free every lock it held or queued for (granting
			// unblocked waiters), and adopt its manager shard if this node
			// is now the successor.
			dead := int(m.Stamp)
			if dead == n.team {
				// A false declaration about our own co-located (and
				// demonstrably alive) application: purging its locks or
				// abandoning its shutdown would orphan it.
				continue
			}
			n.noteCrash(dead)
			if !handled[dead] {
				handled[dead] = true
				remaining--
			}
			n.mu.Lock()
			grants := n.mgr.PurgeProc(dead)
			n.mu.Unlock()
			if err := n.sendGrants(grants); err != nil {
				return err
			}
			n.adoptShards()
		}
	}
	return nil
}

func (n *Node) sendGrants(grants []lockmgr.Grant) error {
	for _, g := range grants {
		mode := wire.ModeRead
		if g.Mode == lockmgr.Write {
			mode = wire.ModeWrite
		}
		m := &wire.Msg{
			Kind: wire.KindLockGrant, Obj: uint32(g.Obj), Mode: mode,
			Ints: []int64{int64(g.Owner), g.Version},
		}
		if err := n.countSend(n.cfg.Svc, g.Proc, m); err != nil {
			return fmt.Errorf("ec service %d: send grant: %w", n.team, err)
		}
	}
	return nil
}

// lockReq is one entry of an iteration's lock set.
type lockReq struct {
	obj   store.ID
	write bool
}

// RunApp executes the team's game loop to completion.
func (n *Node) RunApp() (game.TeamStats, error) {
	app := n.cfg.App
	n.stats = game.TeamStats{Team: n.team}
	defer func() {
		n.mc.SetExecTime(app.Now())
	}()

	for tick := 1; tick <= n.cfg.Game.MaxTicks; tick++ {
		if n.cfg.Game.EndOnFirstGoal {
			// Drain queued winner announcements before paying for locks.
			n.pollApp()
			if n.gameOver {
				n.stats.DoneTick = int64(tick)
				break
			}
		}
		n.tracef("app %d now=%v tick %d", n.team, app.Now(), tick)
		locks := n.lockSet()
		if err := n.acquireAll(locks); err != nil {
			return n.stats, err
		}

		appStart := app.Now()
		alive := n.refreshTanks()
		if !alive {
			n.releaseAll(locks, nil)
			if !n.stats.ReachedGoal {
				n.stats.Destroyed = true
			}
			n.stats.DoneTick = int64(tick)
			break
		}
		n.stats.Ticks++

		dirty := n.decideAndWrite()
		n.mc.AddTime(metrics.CatAppCompute, app.Now()-appStart)
		if n.cfg.ComputePerTick > 0 {
			app.Compute(n.cfg.ComputePerTick)
			n.mc.AddTime(metrics.CatAppCompute, n.cfg.ComputePerTick)
		}

		n.releaseAll(locks, dirty)

		if n.stats.ReachedGoal && len(n.tanks) == 0 {
			n.stats.DoneTick = int64(tick)
			break
		}
	}
	if n.stats.DoneTick == 0 {
		n.stats.DoneTick = int64(n.stats.Ticks)
	}

	// In a first-to-goal game the winner tells every application the race
	// is over.
	if n.cfg.Game.EndOnFirstGoal && n.stats.ReachedGoal {
		for team := 0; team < n.teams; team++ {
			if team == n.team || (n.ft() && n.isCrashed(team)) {
				continue
			}
			m := &wire.Msg{Kind: wire.KindDone, Mode: 1, Stamp: int64(n.team)}
			if err := n.countSend(app, team, m); err != nil {
				if n.ft() && errors.Is(err, transport.ErrPeerGone) {
					n.declareCrash(team)
					continue
				}
				return n.stats, fmt.Errorf("ec app %d: game-over to %d: %w", n.team, team, err)
			}
		}
	}

	// Tell every service process (including our own) that this
	// application is finished. Crashed nodes' services are skipped (their
	// survivors already counted us out via KindCrash if needed).
	for team := 0; team < n.teams; team++ {
		if n.ft() && n.isCrashed(team) {
			continue
		}
		m := &wire.Msg{Kind: wire.KindShutdown, Stamp: int64(n.team)}
		if err := n.countSend(app, n.svcID(team), m); err != nil {
			if n.ft() && errors.Is(err, transport.ErrPeerGone) {
				continue
			}
			return n.stats, fmt.Errorf("ec app %d: shutdown to %d: %w", n.team, team, err)
		}
	}
	return n.stats, nil
}

// pollApp drains queued application-endpoint traffic without blocking
// (between iterations the only expected messages are winner announcements).
func (n *Node) pollApp() {
	for {
		m, ok, err := n.cfg.App.TryRecv()
		if err != nil || !ok {
			return
		}
		if m.Kind == wire.KindDone {
			n.gameOver = true
		}
		if m.Kind == wire.KindCrash {
			n.noteCrash(int(m.Stamp))
		}
	}
}

// lockSet computes this iteration's lock requests: write locks on each
// tank's block and the four adjacent blocks, read locks on the rest of the
// visibility set, ascending object order (deadlock prevention).
func (n *Node) lockSet() []lockReq {
	cfg := n.cfg.Game
	want := make(map[store.ID]bool) // id -> write?
	addVis := func(p game.Pos, write bool) {
		if !cfg.InBounds(p) {
			return
		}
		id := cfg.ObjectOf(p)
		if write {
			want[id] = true
		} else if _, ok := want[id]; !ok {
			want[id] = false
		}
	}
	for _, tank := range n.tanks {
		addVis(tank.Pos, true)
		dirs := []game.Pos{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
		for _, d := range dirs {
			addVis(game.Pos{X: tank.Pos.X + d.X, Y: tank.Pos.Y + d.Y}, true)
			for k := 2; k <= cfg.Range; k++ {
				addVis(game.Pos{X: tank.Pos.X + d.X*k, Y: tank.Pos.Y + d.Y*k}, false)
			}
		}
	}
	out := make([]lockReq, 0, len(want))
	for id, write := range want {
		out = append(out, lockReq{obj: id, write: write})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj < out[j].obj })
	return out
}

// acquireAll acquires the lock set in order, pulling fresh copies as grants
// reveal newer versions elsewhere.
func (n *Node) acquireAll(locks []lockReq) error {
	for _, lr := range locks {
		if err := n.acquireOne(lr); err != nil {
			return err
		}
	}
	return nil
}

// acquireOne acquires one lock, failing over to the successor manager and
// purging dead holders when crash tolerance is on.
func (n *Node) acquireOne(lr lockReq) error {
	app := n.cfg.App
	mode := wire.ModeRead
	if lr.write {
		mode = wire.ModeWrite
	}
	mgrTeam := lockmgr.ManagerFor(lr.obj, n.teams)
	if n.ft() {
		mgrTeam = n.liveManagerFor(lr.obj)
	}
	req := &wire.Msg{Kind: wire.KindLockReq, Obj: uint32(lr.obj), Mode: mode}
	t0 := app.Now()
	if err := n.countSend(app, n.svcID(mgrTeam), req); err != nil {
		if n.ft() && errors.Is(err, transport.ErrPeerGone) {
			n.declareCrash(mgrTeam)
			return n.acquireOne(lr)
		}
		return fmt.Errorf("ec app %d: lock req %d: %w", n.team, lr.obj, err)
	}
	var grant *wire.Msg
	var err error
	if n.ft() {
		grant, err = n.awaitGrantFT(lr.obj, req, mgrTeam)
	} else {
		grant, err = n.awaitKind(wire.KindLockGrant, uint32(lr.obj))
	}
	if err != nil {
		return err
	}
	n.mc.AddTime(metrics.CatLockAcquire, app.Now()-t0)

	owner, version := int(grant.Ints[0]), grant.Ints[1]
	n.mu.Lock()
	local, _ := n.st.Version(lr.obj)
	n.mu.Unlock()
	if version > local && owner != n.team && !(n.ft() && n.isCrashed(owner)) {
		t1 := app.Now()
		pull := &wire.Msg{Kind: wire.KindObjReq, Obj: uint32(lr.obj), Stamp: int64(lr.obj)}
		if err := n.countSend(app, n.svcID(owner), pull); err != nil {
			if n.ft() && errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(owner)
				return nil // local replica stands in for the lost copy
			}
			return fmt.Errorf("ec app %d: pull %d: %w", n.team, lr.obj, err)
		}
		var reply *wire.Msg
		if n.ft() {
			var ok bool
			reply, ok, err = n.awaitPullFT(lr.obj, pull, owner)
			if err != nil {
				return err
			}
			if !ok {
				// The owner crashed before serving the pull; its latest
				// writes are lost (fail-stop) and the local replica is
				// the freshest surviving copy.
				n.mc.AddTime(metrics.CatObjPull, app.Now()-t1)
				return nil
			}
		} else {
			reply, err = n.awaitKind(wire.KindObjReply, uint32(lr.obj))
			if err != nil {
				return err
			}
		}
		n.mu.Lock()
		err = n.st.SetState(lr.obj, reply.Payload, reply.Ints[0])
		n.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ec app %d: apply pulled %d: %w", n.team, lr.obj, err)
		}
		n.mc.AddTime(metrics.CatObjPull, app.Now()-t1)
	}
	return nil
}

// awaitKind blocks until a message of the wanted kind for the wanted object
// arrives. The application has at most one outstanding request, so no other
// traffic can interleave.
func (n *Node) awaitKind(kind wire.Kind, obj uint32) (*wire.Msg, error) {
	for {
		m, err := n.cfg.App.Recv()
		if err != nil {
			return nil, fmt.Errorf("ec app %d: await %v: %w", n.team, kind, err)
		}
		if m.Kind == kind && m.Obj == obj {
			return m, nil
		}
		if m.Kind == wire.KindDone {
			// A winner's announcement arriving mid-acquire: note it and
			// keep waiting for the expected grant (locks are still
			// released properly at the end of the iteration).
			n.gameOver = true
			continue
		}
		if m.Kind == wire.KindCrash {
			n.noteCrash(int(m.Stamp))
			continue
		}
		// Unexpected traffic (e.g. a duplicate) is dropped.
	}
}

// awaitGrantFT waits for the grant of obj with failure detection. Silence
// past the suspicion timeout retransmits the request under bounded
// exponential backoff; exhausted retries declare the current suspect — the
// manager, or (after a KindLockBusy hint) a lock holder — crashed, and the
// wait restarts against the recovered state: a dead manager's successor is
// re-asked, a dead holder's purge lets the (live) manager grant.
func (n *Node) awaitGrantFT(obj store.ID, req *wire.Msg, mgrTeam int) (*wire.Msg, error) {
	app := n.cfg.App
	timeout := n.cfg.SuspectTimeout
	wait := timeout
	retries := 0
	suspect := mgrTeam
	suspectIsHolder := false
	failover := func() error {
		mgrTeam = n.liveManagerFor(obj)
		suspect = mgrTeam
		suspectIsHolder = false
		retries = 0
		wait = timeout
		n.tracef("app %d now=%v obj=%d failover to mgr %d", n.team, app.Now(), obj, mgrTeam)
		if err := n.countSend(app, n.svcID(mgrTeam), req.Clone()); err != nil {
			return fmt.Errorf("ec app %d: failover lock req %d to %d: %w", n.team, obj, mgrTeam, err)
		}
		n.mc.AddRetransmit()
		return nil
	}
	for {
		m, ok, err := app.RecvTimeout(wait)
		if err != nil {
			return nil, fmt.Errorf("ec app %d: await grant %d: %w", n.team, obj, err)
		}
		if ok {
			switch {
			case m.Kind == wire.KindLockGrant && m.Obj == uint32(obj):
				return m, nil
			case m.Kind == wire.KindLockBusy && m.Obj == uint32(obj):
				// The manager is alive but the lock is held elsewhere:
				// blame the first live foreign holder instead.
				for _, h := range m.Ints {
					if int(h) != n.team && !n.isCrashed(int(h)) {
						suspect = int(h)
						suspectIsHolder = true
						break
					}
				}
			case m.Kind == wire.KindDone:
				n.gameOver = true
			case m.Kind == wire.KindCrash:
				n.noteCrash(int(m.Stamp))
				if int(m.Stamp) == mgrTeam {
					// Someone else buried our manager; fail over now.
					if err := failover(); err != nil {
						return nil, err
					}
				}
			}
			continue
		}
		if retries == 0 {
			n.mc.AddSuspect()
		}
		retries++
		n.tracef("app %d now=%v obj=%d grant-wait timeout #%d suspect=%d holder=%v",
			n.team, app.Now(), obj, retries, suspect, suspectIsHolder)
		if retries > n.maxRetransmits() {
			n.declareCrash(suspect)
			if suspectIsHolder {
				// The manager outlives the holder: its purge on KindCrash
				// will grant us the lock. Resume suspecting the manager.
				suspect = mgrTeam
				suspectIsHolder = false
				retries = 0
				wait = timeout
				continue
			}
			if err := failover(); err != nil {
				return nil, err
			}
			continue
		}
		if err := n.countSend(app, n.svcID(mgrTeam), req.Clone()); err != nil {
			if errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(mgrTeam)
				if err := failover(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("ec app %d: retransmit lock req %d: %w", n.team, obj, err)
		}
		n.mc.AddRetransmit()
		if wait < 8*timeout {
			wait *= 2
		}
	}
}

// awaitPullFT waits for an object-pull reply with failure detection. ok is
// false when the owner was declared crashed instead of answering — the
// caller falls back to its local replica.
func (n *Node) awaitPullFT(obj store.ID, req *wire.Msg, owner int) (*wire.Msg, bool, error) {
	app := n.cfg.App
	timeout := n.cfg.SuspectTimeout
	wait := timeout
	retries := 0
	for {
		m, ok, err := app.RecvTimeout(wait)
		if err != nil {
			return nil, false, fmt.Errorf("ec app %d: await pull %d: %w", n.team, obj, err)
		}
		if ok {
			switch {
			case m.Kind == wire.KindObjReply && m.Obj == uint32(obj):
				return m, true, nil
			case m.Kind == wire.KindDone:
				n.gameOver = true
			case m.Kind == wire.KindCrash:
				n.noteCrash(int(m.Stamp))
				if int(m.Stamp) == owner {
					return nil, false, nil
				}
			}
			continue
		}
		if retries == 0 {
			n.mc.AddSuspect()
		}
		retries++
		if retries > n.maxRetransmits() {
			n.declareCrash(owner)
			return nil, false, nil
		}
		if err := n.countSend(app, n.svcID(owner), req.Clone()); err != nil {
			if errors.Is(err, transport.ErrPeerGone) {
				n.declareCrash(owner)
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("ec app %d: retransmit pull %d: %w", n.team, obj, err)
		}
		n.mc.AddRetransmit()
		if wait < 8*timeout {
			wait *= 2
		}
	}
}

// releaseAll returns every lock; written objects release dirty with their
// new version, transferring ownership.
func (n *Node) releaseAll(locks []lockReq, dirty map[store.ID]int64) {
	app := n.cfg.App
	t0 := app.Now()
	for _, lr := range locks {
		mgrTeam := lockmgr.ManagerFor(lr.obj, n.teams)
		if n.ft() {
			mgrTeam = n.liveManagerFor(lr.obj)
		}
		rel := &wire.Msg{Kind: wire.KindLockRelease, Obj: uint32(lr.obj)}
		if v, ok := dirty[lr.obj]; ok && lr.write {
			rel.Ints = []int64{1, v}
		} else {
			rel.Ints = []int64{0, 0}
		}
		// Releases are asynchronous; errors only surface via metrics
		// divergence in tests.
		_ = n.countSend(app, n.svcID(mgrTeam), rel)
	}
	n.mc.AddTime(metrics.CatLockRelease, app.Now()-t0)
}

// refreshTanks drops destroyed tanks; reports whether any remain.
func (n *Node) refreshTanks() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive := n.tanks[:0]
	for _, tank := range n.tanks {
		b, err := n.st.View(n.cfg.Game.ObjectOf(tank.Pos))
		if err != nil {
			continue
		}
		c, err := game.DecodeCell(b)
		if err == nil && c.Kind == game.Tank && c.Team == n.team {
			alive = append(alive, tank)
		}
	}
	n.tanks = alive
	return len(n.tanks) > 0
}

// decideAndWrite runs the decision function on the freshly locked state and
// applies the writes; returns the dirty object versions.
func (n *Node) decideAndWrite() map[store.ID]int64 {
	cfg := n.cfg.Game
	n.mu.Lock()
	defer n.mu.Unlock()

	cellAt := func(p game.Pos) game.Cell {
		b, err := n.st.View(cfg.ObjectOf(p))
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		c, err := game.DecodeCell(b)
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		return c
	}
	// Enemy positions come from the locked visibility cells (EC has no
	// beacons; the locks themselves guarantee freshness).
	enemies := make(map[int][]game.Pos)
	for _, tank := range n.tanks {
		dirs := []game.Pos{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
		for _, d := range dirs {
			for k := 1; k <= cfg.Range; k++ {
				p := game.Pos{X: tank.Pos.X + d.X*k, Y: tank.Pos.Y + d.Y*k}
				if !cfg.InBounds(p) {
					break
				}
				if c := cellAt(p); c.Kind == game.Tank && c.Team != n.team {
					enemies[c.Team] = append(enemies[c.Team], p)
				}
			}
		}
	}

	dirty := make(map[store.ID]int64)
	modified := false
	var next []game.TankState
	for _, tank := range n.tanks {
		act := game.Decide(game.View{
			Cfg:     cfg,
			Team:    n.team,
			Self:    tank.Pos,
			Prev:    tank.Prev,
			Goal:    n.goal,
			CellAt:  cellAt,
			Enemies: enemies,
		})
		var prevTarget game.Cell
		if act.Kind == game.Move {
			prevTarget = cellAt(act.To)
		}
		writes, reachedGoal := act.Writes(n.team, n.goal)
		for _, cw := range writes {
			id := cfg.ObjectOf(cw.Pos)
			if _, err := n.st.Update(id, game.EncodeCell(cw.Cell)); err != nil {
				continue
			}
			v, _ := n.st.Version(id)
			dirty[id] = v
			modified = true
		}
		switch {
		case reachedGoal:
			n.stats.ReachedGoal = true
			n.stats.Score += 5
		case act.Kind == game.Move:
			if prevTarget.Kind == game.Bonus {
				n.stats.Score++
			}
			next = append(next, tank.Advance(act))
		default:
			next = append(next, tank)
		}
	}
	if modified {
		n.stats.Mods++
		n.mc.AddMod()
	}
	n.mc.AddTick()
	n.tanks = next
	return dirty
}
