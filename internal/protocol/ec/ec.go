// Package ec implements the paper's entry consistency baseline (§2.3, §4):
//
//   - one lock per block object, managed by a lock manager; "the lock
//     managers are distributed evenly and statically amongst the processors
//     in the system" (object k's manager lives on node k mod n);
//   - a process acquires exclusive write-locks on the blocks it may modify
//     (its own block and the four adjacent ones) and shared read-locks on
//     the rest of its visibility set — range 1 means 5 locks per move,
//     range 3 means 13 locks of which 5 are write locks, as in §4;
//   - locks are acquired in ascending object-ID order, the paper's
//     total-order deadlock prevention for applications that lock multiple
//     objects simultaneously;
//   - acquiring a lock "pulls" the up-to-date copy from the owner of the
//     freshest version when the local replica is stale, and a dirty release
//     makes the releaser the new owner.
//
// Each game node runs two processes on the same (simulated) host: the
// application process, and a service process that plays lock manager for
// its share of the objects and serves object-pull requests against the
// node's replica. Both share a mutex-guarded node state.
package ec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdso/internal/game"
	"sdso/internal/lockmgr"
	"sdso/internal/metrics"
	"sdso/internal/store"
	"sdso/internal/transport"
	"sdso/internal/wire"
)

// NodeConfig assembles one entry-consistency game node.
type NodeConfig struct {
	// Game is the shared application configuration.
	Game game.Config
	// App is the application process's endpoint; its ID in [0, teams) is
	// the team number.
	App transport.Endpoint
	// Svc is the service process's endpoint; its ID must be teams+team.
	Svc transport.Endpoint
	// Metrics receives the node's counters (nil allocates one).
	Metrics *metrics.Collector
	// ComputePerTick models per-iteration application work.
	ComputePerTick time.Duration
}

// Node is one EC participant: an application process and a co-located
// service process sharing a replica and a lock-manager shard.
type Node struct {
	cfg   NodeConfig
	team  int
	teams int
	mc    *metrics.Collector

	mu  sync.Mutex // guards st and mgr (app and svc touch both)
	st  *store.Store
	mgr *lockmgr.Manager

	goal     game.Pos
	tanks    []game.TankState
	stats    game.TeamStats
	gameOver bool
}

// New validates the configuration and builds a node. The caller runs
// RunService and RunApp on separate goroutines (or simulated processes).
func New(cfg NodeConfig) (*Node, error) {
	if cfg.App == nil || cfg.Svc == nil {
		return nil, errors.New("ec: config requires app and svc endpoints")
	}
	teams := cfg.Game.Teams
	if cfg.App.ID() >= teams || cfg.Svc.ID() != teams+cfg.App.ID() {
		return nil, fmt.Errorf("ec: endpoint ids app=%d svc=%d invalid for %d teams",
			cfg.App.ID(), cfg.Svc.ID(), teams)
	}
	mc := cfg.Metrics
	if mc == nil {
		mc = metrics.NewCollector()
	}
	n := &Node{cfg: cfg, team: cfg.App.ID(), teams: teams, mc: mc}

	w, err := game.NewWorld(cfg.Game)
	if err != nil {
		return nil, err
	}
	n.goal = w.Goal
	n.st = w.Encode()
	for _, pos := range w.TankPositions()[n.team] {
		n.tanks = append(n.tanks, game.NewTankState(pos))
	}

	// This node manages the locks for its static shard of the objects.
	var managed []store.ID
	for i := 0; i < cfg.Game.NumObjects(); i++ {
		if lockmgr.ManagerFor(store.ID(i), teams) == n.team {
			managed = append(managed, store.ID(i))
		}
	}
	n.mgr = lockmgr.New(managed, nil)
	return n, nil
}

// Stats returns the team's final stats (valid after RunApp returns).
func (n *Node) Stats() game.TeamStats { return n.stats }

// Store exposes the node's replica (for test assertions).
func (n *Node) Store() *store.Store {
	return n.st
}

// svcID returns the service endpoint ID for a team.
func (n *Node) svcID(team int) int { return n.teams + team }

func (n *Node) countSend(ep transport.Endpoint, to int, m *wire.Msg) error {
	n.mc.CountSend(m, m.EncodedSize())
	return ep.Send(to, m)
}

// RunService processes lock and object-pull traffic until every
// application process has announced shutdown.
func (n *Node) RunService() error {
	svc := n.cfg.Svc
	remaining := n.teams
	for remaining > 0 {
		m, err := svc.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ec service %d: %w", n.team, err)
		}
		switch m.Kind {
		case wire.KindLockReq:
			mode := lockmgr.Read
			if m.Mode == wire.ModeWrite {
				mode = lockmgr.Write
			}
			n.mu.Lock()
			grants, err := n.mgr.Acquire(lockmgr.Request{Proc: int(m.Src), Obj: store.ID(m.Obj), Mode: mode})
			n.mu.Unlock()
			if err != nil {
				return fmt.Errorf("ec service %d: acquire obj %d for %d: %w", n.team, m.Obj, m.Src, err)
			}
			if err := n.sendGrants(grants); err != nil {
				return err
			}
		case wire.KindLockRelease:
			dirty := len(m.Ints) >= 2 && m.Ints[0] == 1
			var version int64
			if dirty {
				version = m.Ints[1]
			}
			n.mu.Lock()
			grants, err := n.mgr.Release(int(m.Src), store.ID(m.Obj), dirty, version)
			n.mu.Unlock()
			if err != nil {
				return fmt.Errorf("ec service %d: release obj %d by %d: %w", n.team, m.Obj, m.Src, err)
			}
			if err := n.sendGrants(grants); err != nil {
				return err
			}
		case wire.KindObjReq:
			n.mu.Lock()
			state, errGet := n.st.Get(store.ID(m.Obj))
			ver, _ := n.st.Version(store.ID(m.Obj))
			n.mu.Unlock()
			if errGet != nil {
				return fmt.Errorf("ec service %d: serve obj %d: %w", n.team, m.Obj, errGet)
			}
			reply := &wire.Msg{
				Kind: wire.KindObjReply, Obj: m.Obj, Stamp: m.Stamp,
				Ints: []int64{ver}, Payload: state,
			}
			if err := n.countSend(svc, int(m.Src), reply); err != nil {
				return err
			}
		case wire.KindShutdown:
			remaining--
		}
	}
	return nil
}

func (n *Node) sendGrants(grants []lockmgr.Grant) error {
	for _, g := range grants {
		mode := wire.ModeRead
		if g.Mode == lockmgr.Write {
			mode = wire.ModeWrite
		}
		m := &wire.Msg{
			Kind: wire.KindLockGrant, Obj: uint32(g.Obj), Mode: mode,
			Ints: []int64{int64(g.Owner), g.Version},
		}
		if err := n.countSend(n.cfg.Svc, g.Proc, m); err != nil {
			return fmt.Errorf("ec service %d: send grant: %w", n.team, err)
		}
	}
	return nil
}

// lockReq is one entry of an iteration's lock set.
type lockReq struct {
	obj   store.ID
	write bool
}

// RunApp executes the team's game loop to completion.
func (n *Node) RunApp() (game.TeamStats, error) {
	app := n.cfg.App
	n.stats = game.TeamStats{Team: n.team}
	defer func() {
		n.mc.SetExecTime(app.Now())
	}()

	for tick := 1; tick <= n.cfg.Game.MaxTicks; tick++ {
		if n.cfg.Game.EndOnFirstGoal {
			// Drain queued winner announcements before paying for locks.
			n.pollApp()
			if n.gameOver {
				n.stats.DoneTick = int64(tick)
				break
			}
		}
		locks := n.lockSet()
		if err := n.acquireAll(locks); err != nil {
			return n.stats, err
		}

		appStart := app.Now()
		alive := n.refreshTanks()
		if !alive {
			n.releaseAll(locks, nil)
			if !n.stats.ReachedGoal {
				n.stats.Destroyed = true
			}
			n.stats.DoneTick = int64(tick)
			break
		}
		n.stats.Ticks++

		dirty := n.decideAndWrite()
		n.mc.AddTime(metrics.CatAppCompute, app.Now()-appStart)
		if n.cfg.ComputePerTick > 0 {
			app.Compute(n.cfg.ComputePerTick)
			n.mc.AddTime(metrics.CatAppCompute, n.cfg.ComputePerTick)
		}

		n.releaseAll(locks, dirty)

		if n.stats.ReachedGoal && len(n.tanks) == 0 {
			n.stats.DoneTick = int64(tick)
			break
		}
	}
	if n.stats.DoneTick == 0 {
		n.stats.DoneTick = int64(n.stats.Ticks)
	}

	// In a first-to-goal game the winner tells every application the race
	// is over.
	if n.cfg.Game.EndOnFirstGoal && n.stats.ReachedGoal {
		for team := 0; team < n.teams; team++ {
			if team == n.team {
				continue
			}
			m := &wire.Msg{Kind: wire.KindDone, Mode: 1, Stamp: int64(n.team)}
			if err := n.countSend(app, team, m); err != nil {
				return n.stats, fmt.Errorf("ec app %d: game-over to %d: %w", n.team, team, err)
			}
		}
	}

	// Tell every service process (including our own) that this
	// application is finished.
	for team := 0; team < n.teams; team++ {
		m := &wire.Msg{Kind: wire.KindShutdown, Stamp: int64(n.team)}
		if err := n.countSend(app, n.svcID(team), m); err != nil {
			return n.stats, fmt.Errorf("ec app %d: shutdown to %d: %w", n.team, team, err)
		}
	}
	return n.stats, nil
}

// pollApp drains queued application-endpoint traffic without blocking
// (between iterations the only expected messages are winner announcements).
func (n *Node) pollApp() {
	for {
		m, ok, err := n.cfg.App.TryRecv()
		if err != nil || !ok {
			return
		}
		if m.Kind == wire.KindDone {
			n.gameOver = true
		}
	}
}

// lockSet computes this iteration's lock requests: write locks on each
// tank's block and the four adjacent blocks, read locks on the rest of the
// visibility set, ascending object order (deadlock prevention).
func (n *Node) lockSet() []lockReq {
	cfg := n.cfg.Game
	want := make(map[store.ID]bool) // id -> write?
	addVis := func(p game.Pos, write bool) {
		if !cfg.InBounds(p) {
			return
		}
		id := cfg.ObjectOf(p)
		if write {
			want[id] = true
		} else if _, ok := want[id]; !ok {
			want[id] = false
		}
	}
	for _, tank := range n.tanks {
		addVis(tank.Pos, true)
		dirs := []game.Pos{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
		for _, d := range dirs {
			addVis(game.Pos{X: tank.Pos.X + d.X, Y: tank.Pos.Y + d.Y}, true)
			for k := 2; k <= cfg.Range; k++ {
				addVis(game.Pos{X: tank.Pos.X + d.X*k, Y: tank.Pos.Y + d.Y*k}, false)
			}
		}
	}
	out := make([]lockReq, 0, len(want))
	for id, write := range want {
		out = append(out, lockReq{obj: id, write: write})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj < out[j].obj })
	return out
}

// acquireAll acquires the lock set in order, pulling fresh copies as grants
// reveal newer versions elsewhere.
func (n *Node) acquireAll(locks []lockReq) error {
	app := n.cfg.App
	for _, lr := range locks {
		mode := wire.ModeRead
		if lr.write {
			mode = wire.ModeWrite
		}
		mgrTeam := lockmgr.ManagerFor(lr.obj, n.teams)
		req := &wire.Msg{Kind: wire.KindLockReq, Obj: uint32(lr.obj), Mode: mode}
		t0 := app.Now()
		if err := n.countSend(app, n.svcID(mgrTeam), req); err != nil {
			return fmt.Errorf("ec app %d: lock req %d: %w", n.team, lr.obj, err)
		}
		grant, err := n.awaitKind(wire.KindLockGrant, uint32(lr.obj))
		if err != nil {
			return err
		}
		n.mc.AddTime(metrics.CatLockAcquire, app.Now()-t0)

		owner, version := int(grant.Ints[0]), grant.Ints[1]
		n.mu.Lock()
		local, _ := n.st.Version(lr.obj)
		n.mu.Unlock()
		if version > local && owner != n.team {
			t1 := app.Now()
			pull := &wire.Msg{Kind: wire.KindObjReq, Obj: uint32(lr.obj), Stamp: int64(lr.obj)}
			if err := n.countSend(app, n.svcID(owner), pull); err != nil {
				return fmt.Errorf("ec app %d: pull %d: %w", n.team, lr.obj, err)
			}
			reply, err := n.awaitKind(wire.KindObjReply, uint32(lr.obj))
			if err != nil {
				return err
			}
			n.mu.Lock()
			err = n.st.SetState(lr.obj, reply.Payload, reply.Ints[0])
			n.mu.Unlock()
			if err != nil {
				return fmt.Errorf("ec app %d: apply pulled %d: %w", n.team, lr.obj, err)
			}
			n.mc.AddTime(metrics.CatObjPull, app.Now()-t1)
		}
	}
	return nil
}

// awaitKind blocks until a message of the wanted kind for the wanted object
// arrives. The application has at most one outstanding request, so no other
// traffic can interleave.
func (n *Node) awaitKind(kind wire.Kind, obj uint32) (*wire.Msg, error) {
	for {
		m, err := n.cfg.App.Recv()
		if err != nil {
			return nil, fmt.Errorf("ec app %d: await %v: %w", n.team, kind, err)
		}
		if m.Kind == kind && m.Obj == obj {
			return m, nil
		}
		if m.Kind == wire.KindDone {
			// A winner's announcement arriving mid-acquire: note it and
			// keep waiting for the expected grant (locks are still
			// released properly at the end of the iteration).
			n.gameOver = true
			continue
		}
		// Unexpected traffic (e.g. a duplicate) is dropped.
	}
}

// releaseAll returns every lock; written objects release dirty with their
// new version, transferring ownership.
func (n *Node) releaseAll(locks []lockReq, dirty map[store.ID]int64) {
	app := n.cfg.App
	t0 := app.Now()
	for _, lr := range locks {
		mgrTeam := lockmgr.ManagerFor(lr.obj, n.teams)
		rel := &wire.Msg{Kind: wire.KindLockRelease, Obj: uint32(lr.obj)}
		if v, ok := dirty[lr.obj]; ok && lr.write {
			rel.Ints = []int64{1, v}
		} else {
			rel.Ints = []int64{0, 0}
		}
		// Releases are asynchronous; errors only surface via metrics
		// divergence in tests.
		_ = n.countSend(app, n.svcID(mgrTeam), rel)
	}
	n.mc.AddTime(metrics.CatLockRelease, app.Now()-t0)
}

// refreshTanks drops destroyed tanks; reports whether any remain.
func (n *Node) refreshTanks() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive := n.tanks[:0]
	for _, tank := range n.tanks {
		b, err := n.st.View(n.cfg.Game.ObjectOf(tank.Pos))
		if err != nil {
			continue
		}
		c, err := game.DecodeCell(b)
		if err == nil && c.Kind == game.Tank && c.Team == n.team {
			alive = append(alive, tank)
		}
	}
	n.tanks = alive
	return len(n.tanks) > 0
}

// decideAndWrite runs the decision function on the freshly locked state and
// applies the writes; returns the dirty object versions.
func (n *Node) decideAndWrite() map[store.ID]int64 {
	cfg := n.cfg.Game
	n.mu.Lock()
	defer n.mu.Unlock()

	cellAt := func(p game.Pos) game.Cell {
		b, err := n.st.View(cfg.ObjectOf(p))
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		c, err := game.DecodeCell(b)
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		return c
	}
	// Enemy positions come from the locked visibility cells (EC has no
	// beacons; the locks themselves guarantee freshness).
	enemies := make(map[int][]game.Pos)
	for _, tank := range n.tanks {
		dirs := []game.Pos{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
		for _, d := range dirs {
			for k := 1; k <= cfg.Range; k++ {
				p := game.Pos{X: tank.Pos.X + d.X*k, Y: tank.Pos.Y + d.Y*k}
				if !cfg.InBounds(p) {
					break
				}
				if c := cellAt(p); c.Kind == game.Tank && c.Team != n.team {
					enemies[c.Team] = append(enemies[c.Team], p)
				}
			}
		}
	}

	dirty := make(map[store.ID]int64)
	modified := false
	var next []game.TankState
	for _, tank := range n.tanks {
		act := game.Decide(game.View{
			Cfg:     cfg,
			Team:    n.team,
			Self:    tank.Pos,
			Prev:    tank.Prev,
			Goal:    n.goal,
			CellAt:  cellAt,
			Enemies: enemies,
		})
		var prevTarget game.Cell
		if act.Kind == game.Move {
			prevTarget = cellAt(act.To)
		}
		writes, reachedGoal := act.Writes(n.team, n.goal)
		for _, cw := range writes {
			id := cfg.ObjectOf(cw.Pos)
			if _, err := n.st.Update(id, game.EncodeCell(cw.Cell)); err != nil {
				continue
			}
			v, _ := n.st.Version(id)
			dirty[id] = v
			modified = true
		}
		switch {
		case reachedGoal:
			n.stats.ReachedGoal = true
			n.stats.Score += 5
		case act.Kind == game.Move:
			if prevTarget.Kind == game.Bonus {
				n.stats.Score++
			}
			next = append(next, tank.Advance(act))
		default:
			next = append(next, tank)
		}
	}
	if modified {
		n.stats.Mods++
		n.mc.AddMod()
	}
	n.mc.AddTick()
	n.tanks = next
	return dirty
}
