package causal

import (
	"sync"
	"testing"
	"time"

	"sdso/internal/game"
	"sdso/internal/metrics"
	"sdso/internal/transport"
)

// runCausalGame plays a full causal-memory game over the in-memory
// transport (real goroutine concurrency).
func runCausalGame(t *testing.T, cfg game.Config) []game.TeamStats {
	t.Helper()
	net := transport.NewMemNetwork(cfg.Teams)
	t.Cleanup(net.Close)
	stats := make([]game.TeamStats, cfg.Teams)
	errs := make([]error, cfg.Teams)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Teams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = RunPlayer(PlayerConfig{
				Game:     cfg,
				Endpoint: net.Endpoint(i),
				Metrics:  metrics.NewCollector(),
			})
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("causal game deadlocked")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
	return stats
}

// TestCausalMemnetMatchesReference: the per-tick-barrier causal memory must
// reproduce the reference under real concurrency, not just on the
// deterministic simulator.
func TestCausalMemnetMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := game.DefaultConfig(5, 1)
		cfg.Seed = seed
		cfg.MaxTicks = 120
		ref, err := game.RunReference(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats := runCausalGame(t, cfg)
		for i, st := range stats {
			want := ref.Stats[i]
			if st.Mods != want.Mods || st.Ticks != want.Ticks || st.Score != want.Score ||
				st.ReachedGoal != want.ReachedGoal || st.Destroyed != want.Destroyed {
				t.Errorf("seed=%d team %d:\n got %+v\nwant %+v", seed, i, st, want)
			}
		}
	}
}

func TestCausalValidation(t *testing.T) {
	if _, err := RunPlayer(PlayerConfig{Game: game.DefaultConfig(2, 1)}); err == nil {
		t.Error("missing endpoint accepted")
	}
	net := transport.NewMemNetwork(2)
	defer net.Close()
	if _, err := RunPlayer(PlayerConfig{Game: game.DefaultConfig(3, 1), Endpoint: net.Endpoint(0)}); err == nil {
		t.Error("team/endpoint mismatch accepted")
	}
}
