// Package causal implements the causal-memory baseline the paper's §2.3
// argues against: every object modification is broadcast as a causally
// ordered update (vector timestamps, causal delivery), and — because causal
// memory alone "does not ensure the correct execution of collaborative
// applications" — processes barrier each tick so that writes that could
// affect the next operation are visible, exactly as §2.2 describes for the
// worst case ("each process must barrier synchronize with every other
// process after each interval").
//
// Relative to BSYNC this pays the §2.3 costs being criticized: every update
// carries an n-entry vector timestamp, delivery requires causal buffering,
// and no application knowledge ever narrows the recipient set.
package causal

import (
	"errors"
	"fmt"
	"time"

	"sdso/internal/clock"
	"sdso/internal/diff"
	"sdso/internal/game"
	"sdso/internal/metrics"
	"sdso/internal/store"
	"sdso/internal/transport"
	"sdso/internal/wire"
	"sdso/internal/xlist"
)

// PlayerConfig configures one causal-memory game process.
type PlayerConfig struct {
	// Game is the shared configuration.
	Game game.Config
	// Endpoint connects the player; its ID is the team.
	Endpoint transport.Endpoint
	// Metrics receives counters (nil allocates one).
	Metrics *metrics.Collector
	// ComputePerTick models per-tick application work.
	ComputePerTick time.Duration
}

// player is one causal-memory process.
type player struct {
	cfg  PlayerConfig
	ep   transport.Endpoint
	mc   *metrics.Collector
	team int

	st    *store.Store
	vc    clock.Vector
	tick  int64
	goal  game.Pos
	tanks []game.TankState

	// Causal delivery machinery.
	pending  []*wire.Msg   // updates not yet causally deliverable
	tickSeen map[int]int64 // peer -> latest update tick delivered
	peerDone map[int]bool
	gameOver bool

	stats game.TeamStats
}

// RunPlayer executes one team's process under causal memory.
func RunPlayer(cfg PlayerConfig) (game.TeamStats, error) {
	if cfg.Endpoint == nil {
		return game.TeamStats{}, errors.New("causal: config requires an endpoint")
	}
	if cfg.Game.Teams != cfg.Endpoint.N() {
		return game.TeamStats{}, fmt.Errorf("causal: %d teams but %d endpoints", cfg.Game.Teams, cfg.Endpoint.N())
	}
	mc := cfg.Metrics
	if mc == nil {
		mc = metrics.NewCollector()
	}
	p := &player{
		cfg:      cfg,
		ep:       cfg.Endpoint,
		mc:       mc,
		team:     cfg.Endpoint.ID(),
		vc:       clock.NewVector(cfg.Endpoint.N()),
		tickSeen: make(map[int]int64),
		peerDone: make(map[int]bool),
		stats:    game.TeamStats{Team: cfg.Endpoint.ID()},
	}
	w, err := game.NewWorld(cfg.Game)
	if err != nil {
		return game.TeamStats{}, err
	}
	p.goal = w.Goal
	p.st = w.Encode()
	for _, pos := range w.TankPositions()[p.team] {
		p.tanks = append(p.tanks, game.NewTankState(pos))
	}
	err = p.play()
	mc.SetExecTime(cfg.Endpoint.Now())
	return p.stats, err
}

func (p *player) send(to int, m *wire.Msg) error {
	p.mc.CountSend(m, m.EncodedSize())
	return p.ep.Send(to, m)
}

func (p *player) livePeers() []int {
	var out []int
	for peer := 0; peer < p.ep.N(); peer++ {
		if peer != p.team && !p.peerDone[peer] {
			out = append(out, peer)
		}
	}
	return out
}

func (p *player) play() error {
	cfg := p.cfg.Game
	for tick := int64(1); tick <= int64(cfg.MaxTicks); tick++ {
		p.tick = tick
		if cfg.EndOnFirstGoal && p.gameOver {
			p.stats.DoneTick = tick
			return p.finish(false)
		}
		appStart := p.ep.Now()
		p.refreshTanks()
		if len(p.tanks) == 0 {
			if !p.stats.ReachedGoal {
				p.stats.Destroyed = true
			}
			p.stats.DoneTick = tick
			return p.finish(false)
		}
		p.stats.Ticks++
		p.mc.AddTick()

		writes, reachedGoal := p.decide()
		p.mc.AddTime(metrics.CatAppCompute, p.ep.Now()-appStart)
		if p.cfg.ComputePerTick > 0 {
			p.ep.Compute(p.cfg.ComputePerTick)
			p.mc.AddTime(metrics.CatAppCompute, p.cfg.ComputePerTick)
		}

		// Causal broadcast of this tick's writes, then barrier: wait
		// for every live peer's tick-t update (delivered causally).
		exStart := p.ep.Now()
		p.vc.Tick(p.team)
		update := &wire.Msg{
			Kind:    wire.KindUpdate,
			Stamp:   tick,
			Ints:    p.vc.Ints(),
			Payload: xlist.EncodeDiffs(writes),
		}
		for _, peer := range p.livePeers() {
			if err := p.send(peer, update.Clone()); err != nil {
				return fmt.Errorf("causal tick %d: %w", tick, err)
			}
		}
		if err := p.barrier(tick); err != nil {
			return err
		}
		p.mc.AddTime(metrics.CatExchange, p.ep.Now()-exStart)

		if reachedGoal && len(p.tanks) == 0 {
			p.stats.DoneTick = tick
			return p.finish(true)
		}
	}
	p.stats.DoneTick = int64(p.stats.Ticks)
	return p.finish(p.stats.ReachedGoal)
}

// barrier blocks until every live peer's update for this tick has been
// causally delivered.
func (p *player) barrier(tick int64) error {
	for {
		done := true
		for _, peer := range p.livePeers() {
			if p.tickSeen[peer] < tick {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		m, err := p.ep.Recv()
		if err != nil {
			return fmt.Errorf("causal barrier tick %d: %w", tick, err)
		}
		p.handle(m)
	}
}

// handle dispatches a message and drains any pending updates that became
// causally deliverable.
func (p *player) handle(m *wire.Msg) {
	switch m.Kind {
	case wire.KindUpdate:
		p.pending = append(p.pending, m)
		p.drainDeliverable()
	case wire.KindDone:
		peer := int(m.Src)
		p.peerDone[peer] = true
		if m.Mode == 1 {
			p.gameOver = true
		}
		// A departing peer's in-flight updates are delivered by FIFO
		// before its DONE; causal gaps from it cannot occur.
		p.drainDeliverable()
	}
}

// drainDeliverable applies every pending update whose causal predecessors
// have all been delivered.
func (p *player) drainDeliverable() {
	for {
		progress := false
		for i, m := range p.pending {
			mv := clock.VectorFromInts(m.Ints)
			if !clock.CausallyReady(mv, p.vc, int(m.Src)) {
				continue
			}
			p.apply(m)
			p.vc.Merge(mv)
			if m.Stamp > p.tickSeen[int(m.Src)] {
				p.tickSeen[int(m.Src)] = m.Stamp
			}
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}

func (p *player) apply(m *wire.Msg) {
	diffs, err := xlist.DecodeDiffs(m.Payload)
	if err != nil {
		return
	}
	for _, od := range diffs {
		cur, err := p.st.Version(od.Obj)
		if err != nil || od.Version <= cur {
			continue
		}
		_ = p.st.ApplyDiff(od.Obj, od.D, od.Version)
	}
}

// finish announces completion to all peers.
func (p *player) finish(won bool) error {
	var mode uint8
	if won {
		mode = 1
	}
	for _, peer := range p.livePeers() {
		m := &wire.Msg{Kind: wire.KindDone, Stamp: p.tick, Mode: mode}
		if err := p.send(peer, m); err != nil {
			return fmt.Errorf("causal done: %w", err)
		}
	}
	return nil
}

// refreshTanks drops destroyed tanks.
func (p *player) refreshTanks() {
	cfg := p.cfg.Game
	alive := p.tanks[:0]
	for _, tank := range p.tanks {
		b, err := p.st.View(cfg.ObjectOf(tank.Pos))
		if err != nil {
			continue
		}
		c, err := game.DecodeCell(b)
		if err == nil && c.Kind == game.Tank && c.Team == p.team {
			alive = append(alive, tank)
		}
	}
	p.tanks = alive
}

// decide runs the shared decision function on the (barrier-fresh) replica
// and applies the writes locally, returning them as replace diffs.
func (p *player) decide() ([]xlist.ObjDiff, bool) {
	cfg := p.cfg.Game
	cellAt := func(pos game.Pos) game.Cell {
		b, err := p.st.View(cfg.ObjectOf(pos))
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		c, err := game.DecodeCell(b)
		if err != nil {
			return game.Cell{Kind: game.Bomb}
		}
		return c
	}
	// With a per-tick barrier the whole replica is fresh; enemy
	// positions come from a full scan (causal memory has no beacons).
	enemies := make(map[int][]game.Pos)
	for i := 0; i < cfg.NumObjects(); i++ {
		b, err := p.st.View(store.ID(i))
		if err != nil {
			continue
		}
		c, err := game.DecodeCell(b)
		if err == nil && c.Kind == game.Tank && c.Team != p.team {
			enemies[c.Team] = append(enemies[c.Team], cfg.PosOf(store.ID(i)))
		}
	}

	var out []xlist.ObjDiff
	reached := false
	modified := false
	var next []game.TankState
	for _, tank := range p.tanks {
		act := game.Decide(game.View{
			Cfg:     cfg,
			Team:    p.team,
			Self:    tank.Pos,
			Prev:    tank.Prev,
			Goal:    p.goal,
			CellAt:  cellAt,
			Enemies: enemies,
		})
		var prevTarget game.Cell
		if act.Kind == game.Move {
			prevTarget = cellAt(act.To)
		}
		writes, reachedGoal := act.Writes(p.team, p.goal)
		for _, cw := range writes {
			id := cfg.ObjectOf(cw.Pos)
			data := game.EncodeCell(cw.Cell)
			if _, err := p.st.Update(id, data); err != nil {
				continue
			}
			v, _ := p.st.Version(id)
			out = append(out, xlist.ObjDiff{
				Obj:     id,
				Version: v,
				D:       fullState(data),
			})
			modified = true
		}
		switch {
		case reachedGoal:
			p.stats.ReachedGoal = true
			p.stats.Score += 5
			reached = true
		case act.Kind == game.Move:
			if prevTarget.Kind == game.Bonus {
				p.stats.Score++
			}
			next = append(next, tank.Advance(act))
		default:
			next = append(next, tank)
		}
	}
	if modified {
		p.stats.Mods++
		p.mc.AddMod()
	}
	p.tanks = next
	return out, reached
}

func fullState(data []byte) diff.Diff {
	cp := make([]byte, len(data))
	copy(cp, data)
	return diff.Diff{Replace: true, Len: len(cp), Runs: []diff.Run{{Off: 0, Data: cp}}}
}
