// Package xlist implements the two bookkeeping structures at the heart of
// S-DSO's lookahead machinery (paper §3.1, Figures 2 and 3):
//
//   - The exchange-list: a time-ordered list of (exchange-time, process)
//     pairs recording when the local process must next exchange updates
//     with each remote process. "The list is ordered 'earliest
//     exchange-time first' and not by process IDs."
//
//   - The slotted buffer: one slot per remote process holding the object
//     diffs that process has not yet been sent. "S-DSO can be tuned to
//     merge multiple diffs to the same object into one diff since the last
//     exchange with a given process."
package xlist

import (
	"container/heap"
	"fmt"
	"slices"

	"sdso/internal/diff"
	"sdso/internal/store"
)

// compareEntries orders entries by (time, proc) — the exchange-list order.
// A single named comparator avoids re-allocating a closure (and its capture)
// on every Due/Entries call inside the protocols' exchange loops.
func compareEntries(a, b Entry) int {
	switch {
	case a.Time != b.Time:
		if a.Time < b.Time {
			return -1
		}
		return 1
	case a.Proc != b.Proc:
		if a.Proc < b.Proc {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Entry is one (exchange-time, process) pair.
type Entry struct {
	Time int64
	Proc int
}

// List is the exchange-list: at most one pending exchange time per remote
// process, ordered earliest-first (ties broken by process ID for
// determinism).
type List struct {
	h     entryHeap
	index map[int]*entryItem // proc -> live heap item
}

type entryItem struct {
	Entry
	pos     int
	removed bool
}

// NewList returns an empty exchange-list.
func NewList() *List {
	return &List{index: make(map[int]*entryItem)}
}

// Set schedules (or reschedules) the exchange time for proc.
func (l *List) Set(proc int, t int64) {
	if it, ok := l.index[proc]; ok {
		it.Time = t
		heap.Fix(&l.h, it.pos)
		return
	}
	it := &entryItem{Entry: Entry{Time: t, Proc: proc}}
	l.index[proc] = it
	heap.Push(&l.h, it)
}

// Remove drops proc from the list (e.g., the process announced DONE).
func (l *List) Remove(proc int) {
	it, ok := l.index[proc]
	if !ok {
		return
	}
	delete(l.index, proc)
	heap.Remove(&l.h, it.pos)
}

// Time returns proc's scheduled exchange time.
func (l *List) Time(proc int) (int64, bool) {
	it, ok := l.index[proc]
	if !ok {
		return 0, false
	}
	return it.Time, true
}

// Len returns the number of scheduled processes.
func (l *List) Len() int { return len(l.index) }

// Peek returns the earliest entry without removing it.
func (l *List) Peek() (Entry, bool) {
	if l.h.Len() == 0 {
		return Entry{}, false
	}
	return l.h[0].Entry, true
}

// Due returns, in ascending (time, proc) order, every process whose
// exchange time is <= now. The entries remain scheduled; callers
// reschedule them via Set after the exchange completes (the paper's
// exchange() deletes the entry and has the s-function compute a new time).
func (l *List) Due(now int64) []Entry {
	if len(l.index) == 0 {
		return nil
	}
	due := make([]Entry, 0, len(l.index))
	for _, it := range l.index {
		if it.Time <= now {
			due = append(due, it.Entry)
		}
	}
	if len(due) == 0 {
		return nil
	}
	if !slices.IsSortedFunc(due, compareEntries) {
		slices.SortFunc(due, compareEntries)
	}
	return due
}

// Entries returns every entry in (time, proc) order — the rendering used in
// the paper's Figure 2.
func (l *List) Entries() []Entry {
	out := make([]Entry, 0, len(l.index))
	for _, it := range l.index {
		out = append(out, it.Entry)
	}
	if !slices.IsSortedFunc(out, compareEntries) {
		slices.SortFunc(out, compareEntries)
	}
	return out
}

// String renders the list like Figure 2: (t1,p1) (t2,p2) ...
func (l *List) String() string {
	s := ""
	for _, e := range l.Entries() {
		s += fmt.Sprintf("(%d,%d) ", e.Time, e.Proc)
	}
	return s
}

type entryHeap []*entryItem

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Proc < h[j].Proc
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *entryHeap) Push(x any) {
	it := x.(*entryItem)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// ObjDiff pairs an object with a (possibly merged) diff and the version the
// diff produces.
type ObjDiff struct {
	Obj     store.ID
	Version int64
	D       diff.Diff
}

// SlottedBuffer buffers outstanding object modifications per remote
// process (paper Figure 3). One slot per remote process; the local
// process's slot stays empty.
type SlottedBuffer struct {
	self  int
	n     int
	merge bool
	slots []map[store.ID][]ObjDiff
}

// NewSlottedBuffer returns a buffer for a group of n processes with local
// ID self. If merge is true, successive diffs to the same object collapse
// into one — the paper's §3.1 optimization ("merge multiple diffs to the
// same object into one diff since the last exchange"). With merge false,
// every intermediate diff is retained and shipped, which the ablation bench
// uses to measure the optimization's payoff.
func NewSlottedBuffer(self, n int, merge bool) *SlottedBuffer {
	slots := make([]map[store.ID][]ObjDiff, n)
	for i := range slots {
		if i == self {
			continue
		}
		slots[i] = make(map[store.ID][]ObjDiff)
	}
	return &SlottedBuffer{self: self, n: n, merge: merge, slots: slots}
}

// Merging reports whether diff merging is enabled.
func (b *SlottedBuffer) Merging() bool { return b.merge }

// Add records that obj changed by d (reaching version) and the change has
// not yet been sent to proc.
func (b *SlottedBuffer) Add(proc int, obj store.ID, version int64, d diff.Diff) error {
	if proc == b.self {
		return nil // "updates for the local process need not be buffered"
	}
	if proc < 0 || proc >= b.n {
		return fmt.Errorf("xlist: no slot for process %d", proc)
	}
	slot := b.slots[proc]
	if slot == nil {
		return nil // dropped peer: nothing accumulates until Readmit
	}
	prev := slot[obj]
	if len(prev) == 0 || !b.merge {
		slot[obj] = append(prev, ObjDiff{Obj: obj, Version: version, D: d})
		return nil
	}
	last := prev[len(prev)-1]
	// MergeInto with a fresh destination: the merge-walk emits each output
	// run once instead of Merge's split-then-coalesce spans. The destination
	// must not be recycled scratch — Flush hands ObjDiffs to callers whose
	// lifetime we do not control.
	var m diff.Diff
	if err := diff.MergeInto(&m, last.D, d); err != nil {
		return fmt.Errorf("merge buffered diff for obj %d: %w", obj, err)
	}
	prev[len(prev)-1] = ObjDiff{Obj: obj, Version: version, D: m}
	return nil
}

// AddAll records the change for every remote process except those in skip.
func (b *SlottedBuffer) AddAll(obj store.ID, version int64, d diff.Diff, skip map[int]bool) error {
	for proc := 0; proc < b.n; proc++ {
		if proc == b.self || skip[proc] {
			continue
		}
		if err := b.Add(proc, obj, version, d); err != nil {
			return err
		}
	}
	return nil
}

// Pending returns the number of buffered object diffs for proc.
func (b *SlottedBuffer) Pending(proc int) int {
	if proc == b.self || proc < 0 || proc >= b.n {
		return 0
	}
	n := 0
	for _, diffs := range b.slots[proc] {
		n += len(diffs)
	}
	return n
}

// Flush removes and returns proc's buffered diffs, ordered by ascending
// object ID and, within an object, oldest first (so sequential application
// at the receiver reproduces the writer's final state).
func (b *SlottedBuffer) Flush(proc int) []ObjDiff {
	if proc == b.self || proc < 0 || proc >= b.n {
		return nil
	}
	slot := b.slots[proc]
	if len(slot) == 0 {
		return nil
	}
	ids := make([]store.ID, 0, len(slot))
	for id := range slot {
		ids = append(ids, id)
	}
	if !slices.IsSorted(ids) {
		slices.Sort(ids)
	}
	out := make([]ObjDiff, 0, len(ids))
	for _, id := range ids {
		out = append(out, slot[id]...)
	}
	b.slots[proc] = make(map[store.ID][]ObjDiff)
	return out
}

// Objects returns the IDs of objects with buffered diffs for proc, in
// ascending order.
func (b *SlottedBuffer) Objects(proc int) []store.ID {
	if proc == b.self || proc < 0 || proc >= b.n {
		return nil
	}
	slot := b.slots[proc]
	if len(slot) == 0 {
		return nil
	}
	ids := make([]store.ID, 0, len(slot))
	for id := range slot {
		ids = append(ids, id)
	}
	if !slices.IsSorted(ids) {
		slices.Sort(ids)
	}
	return ids
}

// Drop discards proc's buffered diffs and tombstones the slot: a dropped
// process (DONE, evicted as crashed, or absent from the initial
// membership) accumulates nothing until Readmit re-opens its slot.
func (b *SlottedBuffer) Drop(proc int) {
	if proc == b.self || proc < 0 || proc >= b.n {
		return
	}
	b.slots[proc] = nil
}

// Dropped reports whether proc's slot is tombstoned.
func (b *SlottedBuffer) Dropped(proc int) bool {
	return proc != b.self && proc >= 0 && proc < b.n && b.slots[proc] == nil
}

// Readmit re-opens the slot of a previously dropped process so future
// writes buffer for it again — the slotted-buffer half of peer rejoin. The
// joiner's missed history travels in the store snapshot, so the re-opened
// slot starts empty. Readmitting a live slot is a no-op.
func (b *SlottedBuffer) Readmit(proc int) {
	if proc == b.self || proc < 0 || proc >= b.n {
		return
	}
	if b.slots[proc] == nil {
		b.slots[proc] = make(map[store.ID][]ObjDiff)
	}
}
