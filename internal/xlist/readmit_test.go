package xlist

import (
	"testing"

	"sdso/internal/diff"
)

// TestSlottedBufferDropReadmit: Drop tombstones a slot (buffered diffs are
// discarded, new ones no longer accumulate) and Readmit re-opens it empty,
// after which writes buffer again — the rejoin life cycle of a slot.
func TestSlottedBufferDropReadmit(t *testing.T) {
	b := NewSlottedBuffer(0, 3, true)
	pre := diff.Compute([]byte("aaaa"), []byte("abba"))
	if err := b.Add(1, 7, 1, pre); err != nil {
		t.Fatalf("Add: %v", err)
	}

	b.Drop(1)
	if !b.Dropped(1) {
		t.Fatal("slot 1 not tombstoned after Drop")
	}
	if b.Dropped(2) {
		t.Fatal("Drop leaked onto slot 2")
	}
	if got := b.Pending(1); got != 0 {
		t.Fatalf("dropped slot still holds %d diffs", got)
	}
	// Writes while dropped vanish (the peer is gone; its history will
	// travel in a snapshot instead).
	if err := b.Add(1, 7, 2, pre); err != nil {
		t.Fatalf("Add to dropped slot: %v", err)
	}
	if got := b.Pending(1); got != 0 {
		t.Fatalf("dropped slot accumulated %d diffs", got)
	}

	b.Readmit(1)
	if b.Dropped(1) {
		t.Fatal("slot 1 still tombstoned after Readmit")
	}
	if got := b.Pending(1); got != 0 {
		t.Fatalf("readmitted slot not empty: %d diffs", got)
	}
	post := diff.Compute([]byte("abba"), []byte("abcd"))
	if err := b.Add(1, 7, 3, post); err != nil {
		t.Fatalf("Add after Readmit: %v", err)
	}
	out := b.Flush(1)
	if len(out) != 1 || out[0].Version != 3 {
		t.Fatalf("Flush after Readmit = %+v, want only the post-readmit diff", out)
	}
}

// TestSlottedBufferReadmitLiveSlot: readmitting a live slot must not clear
// what it holds.
func TestSlottedBufferReadmitLiveSlot(t *testing.T) {
	b := NewSlottedBuffer(0, 2, true)
	if err := b.Add(1, 7, 1, diff.Compute([]byte("aa"), []byte("ab"))); err != nil {
		t.Fatalf("Add: %v", err)
	}
	b.Readmit(1)
	if got := b.Pending(1); got != 1 {
		t.Fatalf("Readmit on a live slot cleared it: %d diffs", got)
	}
}

// TestSlottedBufferDropBounds: self and out-of-range procs are rejected by
// all three operations.
func TestSlottedBufferDropBounds(t *testing.T) {
	b := NewSlottedBuffer(0, 2, true)
	b.Drop(0)  // self
	b.Drop(-1) // out of range
	b.Drop(9)
	if b.Dropped(0) || b.Dropped(-1) || b.Dropped(9) {
		t.Fatal("bounds violations reported as tombstoned")
	}
}
