package xlist

import "testing"

// FuzzDecodeDiffs: arbitrary DATA payloads must never panic the batch
// decoder, and accepted batches must round trip.
func FuzzDecodeDiffs(f *testing.F) {
	f.Add(EncodeDiffs(nil))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		diffs, err := DecodeDiffs(data)
		if err != nil {
			return
		}
		re, err := DecodeDiffs(EncodeDiffs(diffs))
		if err != nil {
			t.Fatalf("accepted batch failed to round trip: %v", err)
		}
		if len(re) != len(diffs) {
			t.Fatalf("round trip changed batch size: %d vs %d", len(re), len(diffs))
		}
	})
}
