package xlist

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sdso/internal/diff"
	"sdso/internal/store"
)

// The property suite drives a SlottedBuffer through random interleavings of
// AddAll / Flush / Drop / Readmit and checks every observation against a
// deliberately naive reference model: per-proc maps of buffered writes with
// a nil tombstone for dropped slots. The buffer under test uses the
// whole-state Replace diffs the runtime ships, so merged entries must carry
// exactly the latest write's bytes.

type refWrite struct {
	ver  int64
	data []byte
}

type refModel struct {
	self, n int
	merge   bool
	slots   []map[store.ID][]refWrite // nil == tombstoned
}

func newRefModel(self, n int, merge bool) *refModel {
	m := &refModel{self: self, n: n, merge: merge, slots: make([]map[store.ID][]refWrite, n)}
	for i := range m.slots {
		if i != self {
			m.slots[i] = make(map[store.ID][]refWrite)
		}
	}
	return m
}

func (m *refModel) addAll(obj store.ID, ver int64, data []byte, skip map[int]bool) {
	for p := 0; p < m.n; p++ {
		if p == m.self || skip[p] || m.slots[p] == nil {
			continue
		}
		w := refWrite{ver: ver, data: append([]byte(nil), data...)}
		prev := m.slots[p][obj]
		if m.merge && len(prev) > 0 {
			prev[len(prev)-1] = w // a Replace over a Replace is the new Replace
		} else {
			m.slots[p][obj] = append(prev, w)
		}
	}
}

func (m *refModel) flush(p int) []refWrite {
	if p == m.self || m.slots[p] == nil {
		return nil
	}
	var out []refWrite
	for obj := store.ID(0); int(obj) < 64; obj++ { // ascending object order
		out = append(out, m.slots[p][obj]...)
	}
	m.slots[p] = make(map[store.ID][]refWrite)
	return out
}

func (m *refModel) drop(p int) {
	if p != m.self {
		m.slots[p] = nil
	}
}

func (m *refModel) readmit(p int) {
	if p != m.self && m.slots[p] == nil {
		m.slots[p] = make(map[store.ID][]refWrite)
	}
}

func (m *refModel) pending(p int) int {
	if p == m.self || m.slots[p] == nil {
		return 0
	}
	n := 0
	for _, ws := range m.slots[p] {
		n += len(ws)
	}
	return n
}

func (m *refModel) objects(p int) []store.ID {
	if p == m.self || m.slots[p] == nil {
		return nil
	}
	var ids []store.ID
	for obj := store.ID(0); int(obj) < 64; obj++ {
		if len(m.slots[p][obj]) > 0 {
			ids = append(ids, obj)
		}
	}
	return ids
}

func replacePayload(rng *rand.Rand) []byte {
	b := make([]byte, 4+rng.Intn(8))
	rng.Read(b)
	return b
}

func replaceOf(data []byte) diff.Diff {
	cp := append([]byte(nil), data...)
	return diff.Diff{Replace: true, Len: len(cp), Runs: []diff.Run{{Off: 0, Data: cp}}}
}

// checkAgainstModel compares every read-only observation of the buffer with
// the model's.
func checkAgainstModel(t *testing.T, step int, b *SlottedBuffer, m *refModel) {
	t.Helper()
	for p := 0; p < m.n; p++ {
		if got, want := b.Dropped(p), p != m.self && m.slots[p] == nil; got != want {
			t.Fatalf("step %d: Dropped(%d) = %v, want %v", step, p, got, want)
		}
		if got, want := b.Pending(p), m.pending(p); got != want {
			t.Fatalf("step %d: Pending(%d) = %d, want %d", step, p, got, want)
		}
		gotIDs := b.Objects(p)
		wantIDs := m.objects(p)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("step %d: Objects(%d) = %v, want %v", step, p, gotIDs, wantIDs)
		}
		for i := range gotIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("step %d: Objects(%d) = %v, want %v", step, p, gotIDs, wantIDs)
			}
		}
	}
}

func runPropertySeq(t *testing.T, seed int64, merge bool) {
	t.Helper()
	const n, self, steps = 4, 0, 400
	rng := rand.New(rand.NewSource(seed))
	b := NewSlottedBuffer(self, n, merge)
	m := newRefModel(self, n, merge)

	for step := 0; step < steps; step++ {
		p := rng.Intn(n)
		switch op := rng.Intn(10); {
		case op < 5: // write: the common case
			obj := store.ID(rng.Intn(64))
			ver := int64(step + 1)
			data := replacePayload(rng)
			var skip map[int]bool
			if rng.Intn(3) == 0 {
				skip = map[int]bool{rng.Intn(n): true}
			}
			if err := b.AddAll(obj, ver, replaceOf(data), skip); err != nil {
				t.Fatalf("step %d: AddAll: %v", step, err)
			}
			m.addAll(obj, ver, data, skip)
		case op < 7: // flush one peer and compare the drained sequence
			got := b.Flush(p)
			want := m.flush(p)
			if len(got) != len(want) {
				t.Fatalf("step %d: Flush(%d) drained %d diffs, want %d", step, p, len(got), len(want))
			}
			for i := range got {
				if got[i].Version != want[i].ver {
					t.Fatalf("step %d: Flush(%d)[%d] version %d, want %d", step, p, i, got[i].Version, want[i].ver)
				}
				if !got[i].D.Replace || !bytes.Equal(got[i].D.Runs[0].Data, want[i].data) {
					t.Fatalf("step %d: Flush(%d)[%d] obj %d carries wrong bytes", step, p, i, got[i].Obj)
				}
			}
			for i := 1; i < len(got); i++ {
				if got[i].Obj < got[i-1].Obj {
					t.Fatalf("step %d: Flush(%d) not ordered by object: %d after %d", step, p, got[i].Obj, got[i-1].Obj)
				}
			}
		case op < 8:
			b.Drop(p)
			m.drop(p)
		case op < 9:
			b.Readmit(p)
			m.readmit(p)
		default: // self-directed traffic must be inert
			if err := b.Add(self, store.ID(rng.Intn(64)), int64(step), replaceOf(replacePayload(rng))); err != nil {
				t.Fatalf("step %d: Add(self): %v", step, err)
			}
		}
		checkAgainstModel(t, step, b, m)
	}
}

// TestSlottedBufferProperties cross-checks the slotted buffer against the
// reference model over random schedules, with and without diff merging.
func TestSlottedBufferProperties(t *testing.T) {
	seeds := 4
	if !testing.Short() {
		seeds = 16
	}
	for _, merge := range []bool{true, false} {
		for seed := 0; seed < seeds; seed++ {
			merge, seed := merge, int64(seed)
			t.Run(fmt.Sprintf("merge=%v/seed=%d", merge, seed), func(t *testing.T) {
				runPropertySeq(t, seed, merge)
			})
		}
	}
}

// TestSlottedBufferDropReadmitCycle pins the tombstone lifecycle: writes
// into a dropped slot vanish, Readmit starts the slot empty, and a second
// Readmit of a live slot is a no-op that preserves buffered diffs.
func TestSlottedBufferDropReadmitCycle(t *testing.T) {
	b := NewSlottedBuffer(0, 3, true)
	if err := b.AddAll(5, 1, replaceOf([]byte("a")), nil); err != nil {
		t.Fatal(err)
	}
	b.Drop(1)
	if !b.Dropped(1) || b.Pending(1) != 0 {
		t.Fatalf("after Drop: Dropped=%v Pending=%d", b.Dropped(1), b.Pending(1))
	}
	if err := b.AddAll(6, 2, replaceOf([]byte("b")), nil); err != nil {
		t.Fatal(err)
	}
	if b.Pending(1) != 0 {
		t.Fatalf("dropped slot accumulated %d diffs", b.Pending(1))
	}
	b.Readmit(1)
	if b.Dropped(1) || b.Pending(1) != 0 {
		t.Fatalf("after Readmit: Dropped=%v Pending=%d, want live and empty", b.Dropped(1), b.Pending(1))
	}
	if err := b.AddAll(7, 3, replaceOf([]byte("c")), nil); err != nil {
		t.Fatal(err)
	}
	b.Readmit(1) // live slot: must keep the buffered diff
	if got := b.Pending(1); got != 1 {
		t.Fatalf("Readmit of live slot lost diffs: Pending=%d, want 1", got)
	}
	if got := b.Flush(1); len(got) != 1 || got[0].Obj != 7 {
		t.Fatalf("Flush after cycle = %+v, want the single obj-7 diff", got)
	}
}
