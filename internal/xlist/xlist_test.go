package xlist

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sdso/internal/diff"
	"sdso/internal/store"
)

func TestListSetAndDue(t *testing.T) {
	l := NewList()
	l.Set(3, 10)
	l.Set(1, 5)
	l.Set(2, 10)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}

	due := l.Due(4)
	if len(due) != 0 {
		t.Errorf("Due(4) = %v, want empty", due)
	}
	due = l.Due(10)
	want := []Entry{{5, 1}, {10, 2}, {10, 3}}
	if len(due) != len(want) {
		t.Fatalf("Due(10) = %v, want %v", due, want)
	}
	for i := range want {
		if due[i] != want[i] {
			t.Errorf("Due[%d] = %v, want %v", i, due[i], want[i])
		}
	}
}

func TestListReschedule(t *testing.T) {
	l := NewList()
	l.Set(1, 5)
	l.Set(1, 20) // reschedule, not duplicate
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if tt, ok := l.Time(1); !ok || tt != 20 {
		t.Errorf("Time(1) = %d,%v", tt, ok)
	}
	if e, ok := l.Peek(); !ok || e.Time != 20 {
		t.Errorf("Peek = %+v,%v", e, ok)
	}
}

func TestListRemove(t *testing.T) {
	l := NewList()
	l.Set(1, 5)
	l.Set(2, 3)
	l.Remove(1)
	l.Remove(99) // no-op
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	if _, ok := l.Time(1); ok {
		t.Error("removed entry still present")
	}
	if e, _ := l.Peek(); e.Proc != 2 {
		t.Errorf("Peek = %+v", e)
	}
}

func TestListOrderedEarliestFirst(t *testing.T) {
	// Property: Entries() is sorted by (time, proc) regardless of the
	// insertion/reschedule sequence, and Peek matches Entries()[0].
	f := func(ops []struct {
		Proc uint8
		Time uint16
	}) bool {
		l := NewList()
		for _, op := range ops {
			l.Set(int(op.Proc), int64(op.Time))
		}
		es := l.Entries()
		for i := 1; i < len(es); i++ {
			if es[i-1].Time > es[i].Time ||
				(es[i-1].Time == es[i].Time && es[i-1].Proc >= es[i].Proc) {
				return false
			}
		}
		if len(es) > 0 {
			p, ok := l.Peek()
			if !ok || p != es[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestListString(t *testing.T) {
	l := NewList()
	l.Set(2, 7)
	l.Set(0, 3)
	if got, want := l.String(), "(3,0) (7,2) "; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func mkDiff(t *testing.T, old, new string) diff.Diff {
	t.Helper()
	return diff.Compute([]byte(old), []byte(new))
}

func TestSlottedBufferBasics(t *testing.T) {
	b := NewSlottedBuffer(0, 3, true)
	d := mkDiff(t, "aaaa", "abba")
	if err := b.Add(1, 7, 1, d); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := b.Add(0, 7, 1, d); err != nil { // self: silently ignored
		t.Fatalf("Add self: %v", err)
	}
	if b.Pending(0) != 0 {
		t.Error("self slot should stay empty")
	}
	if b.Pending(1) != 1 || b.Pending(2) != 0 {
		t.Errorf("Pending = %d,%d", b.Pending(1), b.Pending(2))
	}
	if err := b.Add(5, 7, 1, d); err == nil {
		t.Error("Add out of range should fail")
	}

	out := b.Flush(1)
	if len(out) != 1 || out[0].Obj != 7 || out[0].Version != 1 {
		t.Fatalf("Flush = %+v", out)
	}
	if b.Pending(1) != 0 {
		t.Error("Flush did not clear slot")
	}
}

func TestSlottedBufferMerges(t *testing.T) {
	b := NewSlottedBuffer(0, 2, true)
	base := []byte("aaaaaaaa")
	mid := []byte("abaaaaaa")
	fin := []byte("abaaaaba")
	if err := b.Add(1, 3, 1, diff.Compute(base, mid)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 3, 2, diff.Compute(mid, fin)); err != nil {
		t.Fatal(err)
	}
	if got := b.Pending(1); got != 1 {
		t.Fatalf("merged Pending = %d, want 1", got)
	}
	out := b.Flush(1)
	applied, err := diff.Apply(base, out[0].D)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(applied, fin) {
		t.Errorf("merged diff produced %q, want %q", applied, fin)
	}
	if out[0].Version != 2 {
		t.Errorf("merged version = %d, want 2", out[0].Version)
	}
}

func TestSlottedBufferUnmergedKeepsAll(t *testing.T) {
	b := NewSlottedBuffer(0, 2, false)
	base := []byte("aaaaaaaa")
	mid := []byte("abaaaaaa")
	fin := []byte("abaaaaba")
	b.Add(1, 3, 1, diff.Compute(base, mid))
	b.Add(1, 3, 2, diff.Compute(mid, fin))
	if got := b.Pending(1); got != 2 {
		t.Fatalf("unmerged Pending = %d, want 2", got)
	}
	out := b.Flush(1)
	state := base
	for _, od := range out {
		var err error
		state, err = diff.Apply(state, od.D)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if !bytes.Equal(state, fin) {
		t.Errorf("sequential apply produced %q, want %q", state, fin)
	}
}

func TestSlottedBufferFlushOrdering(t *testing.T) {
	b := NewSlottedBuffer(1, 3, true)
	d := mkDiff(t, "xx", "xy")
	for _, obj := range []store.ID{9, 2, 5} {
		if err := b.Add(0, obj, 1, d); err != nil {
			t.Fatal(err)
		}
	}
	out := b.Flush(0)
	if len(out) != 3 || out[0].Obj != 2 || out[1].Obj != 5 || out[2].Obj != 9 {
		t.Errorf("Flush order = %+v", out)
	}
}

func TestSlottedBufferDrop(t *testing.T) {
	b := NewSlottedBuffer(0, 2, true)
	b.Add(1, 1, 1, mkDiff(t, "ab", "cd"))
	b.Drop(1)
	if b.Pending(1) != 0 {
		t.Error("Drop did not clear slot")
	}
	if out := b.Flush(1); out != nil {
		t.Errorf("Flush after Drop = %v", out)
	}
}

func TestBufferedMergeEquivalentToEager(t *testing.T) {
	// Property: a receiver applying the merged/flushed diffs sees the same
	// final state as one receiving every update eagerly.
	f := func(seed int64, merge bool) bool {
		rng := rand.New(rand.NewSource(seed))
		const objLen = 12
		base := make([]byte, objLen)
		rng.Read(base)

		buf := NewSlottedBuffer(0, 2, merge)
		eager := append([]byte(nil), base...)
		cur := append([]byte(nil), base...)
		for i := 0; i < 8; i++ {
			next := make([]byte, objLen)
			copy(next, cur)
			for k := 0; k < rng.Intn(3)+1; k++ {
				next[rng.Intn(objLen)] = byte(rng.Intn(256))
			}
			d := diff.Compute(cur, next)
			if err := buf.Add(1, 1, int64(i+1), d); err != nil {
				return false
			}
			var err error
			eager, err = diff.Apply(eager, d)
			if err != nil {
				return false
			}
			cur = next
		}
		state := append([]byte(nil), base...)
		for _, od := range buf.Flush(1) {
			var err error
			state, err = diff.Apply(state, od.D)
			if err != nil {
				return false
			}
		}
		return bytes.Equal(state, eager) && bytes.Equal(state, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeDiffs(t *testing.T) {
	diffs := []ObjDiff{
		{Obj: 1, Version: 3, D: mkDiff(t, "aaaa", "abca")},
		{Obj: 7, Version: 1, D: mkDiff(t, "zzzz", "zzzz")},
		{Obj: 9, Version: 5, D: diff.Compute([]byte("aa"), []byte("longer"))},
	}
	enc := EncodeDiffs(diffs)
	dec, err := DecodeDiffs(enc)
	if err != nil {
		t.Fatalf("DecodeDiffs: %v", err)
	}
	if len(dec) != len(diffs) {
		t.Fatalf("decoded %d entries, want %d", len(dec), len(diffs))
	}
	for i := range diffs {
		if dec[i].Obj != diffs[i].Obj || dec[i].Version != diffs[i].Version {
			t.Errorf("entry %d header mismatch: %+v vs %+v", i, dec[i], diffs[i])
		}
	}
	// Empty batch round trip.
	dec, err = DecodeDiffs(EncodeDiffs(nil))
	if err != nil || len(dec) != 0 {
		t.Errorf("empty batch: %v, %v", dec, err)
	}
}

func TestDecodeDiffsCorrupt(t *testing.T) {
	enc := EncodeDiffs([]ObjDiff{{Obj: 1, Version: 1, D: mkDiff(t, "ab", "cd")}})
	cases := map[string][]byte{
		"empty":     {},
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte{}, enc...), 1),
		"huge count": func() []byte {
			return []byte{0xff, 0xff, 0xff, 0xff, 0x7f}
		}(),
	}
	for name, buf := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeDiffs(buf); err == nil {
				t.Error("accepted corrupt payload")
			}
		})
	}
}

func TestDecodeDiffsFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		buf := make([]byte, rng.Intn(80))
		rng.Read(buf)
		_, _ = DecodeDiffs(buf)
	}
}
