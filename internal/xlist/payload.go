package xlist

import (
	"encoding/binary"
	"fmt"

	"sdso/internal/diff"
	"sdso/internal/store"
)

// EncodeDiffs serializes a batch of object diffs into a DATA message
// payload.
func EncodeDiffs(diffs []ObjDiff) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(diffs)))
	for _, od := range diffs {
		buf = binary.AppendUvarint(buf, uint64(od.Obj))
		buf = binary.AppendUvarint(buf, uint64(od.Version))
		enc := diff.Encode(od.D)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

// DecodeDiffs parses a DATA message payload produced by EncodeDiffs.
func DecodeDiffs(buf []byte) ([]ObjDiff, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("xlist: corrupt diff batch header")
	}
	buf = buf[n:]
	if count > uint64(len(buf))+1 {
		return nil, fmt.Errorf("xlist: diff batch claims %d entries in %d bytes", count, len(buf))
	}
	out := make([]ObjDiff, 0, count)
	for i := uint64(0); i < count; i++ {
		obj, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt object id in entry %d", i)
		}
		buf = buf[n:]
		ver, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt version in entry %d", i)
		}
		buf = buf[n:]
		dlen, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt diff length in entry %d", i)
		}
		buf = buf[n:]
		if dlen > uint64(len(buf)) {
			return nil, fmt.Errorf("xlist: truncated diff in entry %d", i)
		}
		d, err := diff.Decode(buf[:dlen])
		if err != nil {
			return nil, fmt.Errorf("xlist: entry %d: %w", i, err)
		}
		buf = buf[dlen:]
		out = append(out, ObjDiff{Obj: store.ID(obj), Version: int64(ver), D: d})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("xlist: %d trailing bytes in diff batch", len(buf))
	}
	return out, nil
}
