package xlist

import (
	"encoding/binary"
	"fmt"

	"sdso/internal/diff"
	"sdso/internal/store"
)

// EncodeDiffs serializes a batch of object diffs into a DATA message
// payload.
func EncodeDiffs(diffs []ObjDiff) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(diffs)))
	for _, od := range diffs {
		buf = binary.AppendUvarint(buf, uint64(od.Obj))
		buf = binary.AppendUvarint(buf, uint64(od.Version))
		enc := diff.Encode(od.D)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

// DeltaRecord is one entry of a delta-capable DATA payload (sent under
// wire.ModeDeltaPayload): either a full object diff — exactly what an
// ObjDiff carries — or an XOR delta against a base state the receiver is
// expected to hold, identified by the base's version and fingerprint so a
// diverged receiver rejects it instead of decoding garbage.
type DeltaRecord struct {
	Obj     store.ID
	Version int64
	// Delta selects the encoding: false means D holds a full diff, true
	// means X holds diff.EncodeXOR output against (BaseVer, BaseHash).
	Delta    bool
	D        diff.Diff
	BaseVer  int64
	BaseHash uint32
	X        []byte
}

// EncodeDeltaRecords serializes a batch of delta-capable records. The
// layout extends EncodeDiffs per entry with a flag byte; full records add
// nothing else, delta records carry the base version, a fixed 4-byte base
// fingerprint, and the XOR delta bytes.
func EncodeDeltaRecords(recs []DeltaRecord) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, rec := range recs {
		buf = binary.AppendUvarint(buf, uint64(rec.Obj))
		buf = binary.AppendUvarint(buf, uint64(rec.Version))
		if !rec.Delta {
			buf = append(buf, 0)
			enc := diff.Encode(rec.D)
			buf = binary.AppendUvarint(buf, uint64(len(enc)))
			buf = append(buf, enc...)
			continue
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(rec.BaseVer))
		buf = binary.LittleEndian.AppendUint32(buf, rec.BaseHash)
		buf = binary.AppendUvarint(buf, uint64(len(rec.X)))
		buf = append(buf, rec.X...)
	}
	return buf
}

// DecodeDeltaRecords parses a payload produced by EncodeDeltaRecords.
func DecodeDeltaRecords(buf []byte) ([]DeltaRecord, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("xlist: corrupt delta batch header")
	}
	buf = buf[n:]
	if count > uint64(len(buf))+1 {
		return nil, fmt.Errorf("xlist: delta batch claims %d entries in %d bytes", count, len(buf))
	}
	out := make([]DeltaRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		obj, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt object id in delta entry %d", i)
		}
		buf = buf[n:]
		ver, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt version in delta entry %d", i)
		}
		buf = buf[n:]
		if len(buf) < 1 || buf[0] > 1 {
			return nil, fmt.Errorf("xlist: bad flag in delta entry %d", i)
		}
		isDelta := buf[0] == 1
		buf = buf[1:]
		rec := DeltaRecord{Obj: store.ID(obj), Version: int64(ver), Delta: isDelta}
		if !isDelta {
			dlen, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("xlist: corrupt diff length in delta entry %d", i)
			}
			buf = buf[n:]
			if dlen > uint64(len(buf)) {
				return nil, fmt.Errorf("xlist: truncated diff in delta entry %d", i)
			}
			d, err := diff.Decode(buf[:dlen])
			if err != nil {
				return nil, fmt.Errorf("xlist: delta entry %d: %w", i, err)
			}
			buf = buf[dlen:]
			rec.D = d
			out = append(out, rec)
			continue
		}
		bver, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt base version in delta entry %d", i)
		}
		buf = buf[n:]
		if len(buf) < 4 {
			return nil, fmt.Errorf("xlist: truncated base hash in delta entry %d", i)
		}
		rec.BaseVer = int64(bver)
		rec.BaseHash = binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		xlen, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt delta length in entry %d", i)
		}
		buf = buf[n:]
		if xlen > uint64(len(buf)) {
			return nil, fmt.Errorf("xlist: truncated delta in entry %d", i)
		}
		rec.X = append([]byte(nil), buf[:xlen]...)
		buf = buf[xlen:]
		out = append(out, rec)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("xlist: %d trailing bytes in delta batch", len(buf))
	}
	return out, nil
}

// DecodeDiffs parses a DATA message payload produced by EncodeDiffs.
func DecodeDiffs(buf []byte) ([]ObjDiff, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("xlist: corrupt diff batch header")
	}
	buf = buf[n:]
	if count > uint64(len(buf))+1 {
		return nil, fmt.Errorf("xlist: diff batch claims %d entries in %d bytes", count, len(buf))
	}
	out := make([]ObjDiff, 0, count)
	for i := uint64(0); i < count; i++ {
		obj, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt object id in entry %d", i)
		}
		buf = buf[n:]
		ver, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt version in entry %d", i)
		}
		buf = buf[n:]
		dlen, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("xlist: corrupt diff length in entry %d", i)
		}
		buf = buf[n:]
		if dlen > uint64(len(buf)) {
			return nil, fmt.Errorf("xlist: truncated diff in entry %d", i)
		}
		d, err := diff.Decode(buf[:dlen])
		if err != nil {
			return nil, fmt.Errorf("xlist: entry %d: %w", i, err)
		}
		buf = buf[dlen:]
		out = append(out, ObjDiff{Obj: store.ID(obj), Version: int64(ver), D: d})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("xlist: %d trailing bytes in diff batch", len(buf))
	}
	return out, nil
}
