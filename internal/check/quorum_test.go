package check

import (
	"strings"
	"testing"
)

// The real engine must survive the full schedule grid — crash-free and with
// crash schedules that kill up to f replicas mid-protocol (including
// mid-phase-2) — for both supported replication factors.
func TestQuorumInvariantsHold(t *testing.T) {
	for _, f := range []int{1, 2} {
		runner := QuorumRunner(f)
		for seed := int64(1); seed <= 64; seed++ {
			for _, faults := range []bool{false, true} {
				sc := Scenario{Seed: seed, Ticks: 48, Teams: 3, Faults: faults}
				rep, err := runner(sc)
				if err != nil {
					t.Fatalf("f=%d seed=%d faults=%v: %v", f, seed, faults, err)
				}
				if !rep.Ok() {
					t.Fatalf("f=%d seed=%d faults=%v: %s", f, seed, faults, rep)
				}
			}
		}
	}
}

// A deliberately undersized quorum (f instead of f+1) breaks majority
// intersection; the invariants must notice, proving the oracle is not
// vacuous.
func TestQuorumCatchesUndersizedQuorum(t *testing.T) {
	const f = 1
	runner := quorumRunner(f, f) // majority should be f+1
	found := false
	for seed := int64(1); seed <= 64 && !found; seed++ {
		rep, err := runner(Scenario{Seed: seed, Ticks: 64, Teams: 3, Faults: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			if strings.HasPrefix(v.Class, "quorum-") {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("undersized quorum produced no quorum-* violation over 64 seeds")
	}
}

// Violations found by Explore shrink to a printed repro, same as the
// protocol schedules.
func TestQuorumExploreShrinks(t *testing.T) {
	cfg := ExploreConfig{Schedules: 16, BaseSeed: 1, Ticks: 64, Teams: 3, FaultEvery: 1}
	res := Explore(cfg, quorumRunner(1, 1))
	if res.Ok() {
		t.Skip("no violation surfaced to shrink at these seeds")
	}
	fail := res.Failures[0]
	if fail.Shrunk.Ticks > fail.Scenario.Ticks {
		t.Fatalf("shrunk scenario grew: %+v from %+v", fail.Shrunk, fail.Scenario)
	}
	if fail.Report == nil && fail.Err == nil {
		t.Fatal("failure carries neither report nor error")
	}
}

func TestQuorumRunnerDeterministic(t *testing.T) {
	runner := QuorumRunner(1)
	sc := Scenario{Seed: 7, Ticks: 40, Teams: 2, Faults: true}
	a, err := runner(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || len(a.Violations) != len(b.Violations) {
		t.Fatalf("same scenario diverged: %d/%d events, %d/%d violations",
			a.Events, b.Events, len(a.Violations), len(b.Violations))
	}
}

func TestQuorumRunnerRejectsBadF(t *testing.T) {
	if _, err := quorumRunner(0, 1)(Scenario{Seed: 1, Ticks: 4, Teams: 1}); err == nil {
		t.Fatal("f=0 accepted")
	}
}
