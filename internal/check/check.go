// Package check is the consistency oracle: it replays the per-process
// observation histories recorded by internal/trace and checks the paper's
// invariants after the fact — logical-clock monotonicity and SYNC buffering
// (BSYNC's temporal constraint), exchange-list adherence (every scheduled
// rendezvous is either honoured or explicitly cancelled by a DONE/eviction),
// PID-order data-race arbitration, MSYNC/MSYNC2 spatial-filter soundness,
// post-quiescence replica convergence, and EC per-object lock
// serializability. The oracle is pure: it never talks to the runtime, only
// reads histories and final stores, so one recorded run can be re-analyzed
// under different option sets.
package check

import (
	"fmt"
	"sort"
	"strings"

	"sdso/internal/store"
	"sdso/internal/trace"
)

// History is the input to the oracle: one event log per process plus each
// process's final store. A nil store (or a true Crashed flag) marks a
// process that died mid-run; the delivery and convergence checks excuse it.
type History struct {
	// Procs holds each process's recorded events, indexed by process ID.
	Procs [][]trace.Event
	// Stores holds each process's final replica, indexed by process ID;
	// nil entries are skipped by store-side checks.
	Stores []*store.Store
	// Crashed marks processes that fail-stopped and never rejoined.
	Crashed []bool
}

// Options selects which invariants apply to the recorded run. The temporal
// checks (clock, SYNC buffering, exchange-list adherence, PID arbitration)
// always run; the rest are protocol- and scenario-specific.
type Options struct {
	// Spatial enables the MSYNC/MSYNC2 withholding check: an update may
	// be withheld from a peer only if the peer's tanks are all outside
	// the interaction radius of the object.
	Spatial bool
	// DeliveryBound enables the MSYNC2 relevance check: an update
	// delivered to a peer must be justifiable by proximity (within
	// Radius plus the maximum drift since the last rendezvous).
	DeliveryBound bool
	// Radius is the game's interaction radius (game.Config.InteractionRadius).
	Radius int
	// ObjPos maps an object ID to its grid position; required by the
	// spatial checks.
	ObjPos func(obj int64) (x, y int)
	// EC enables the entry-consistency lock checks.
	EC bool
	// Lossy marks runs under message loss or crashes: per-message
	// delivery and cross-replica arbitration checks are skipped (loss
	// legitimately suppresses deliveries), while the per-process checks
	// still apply.
	Lossy bool
	// Convergence asserts post-quiescence replica agreement: any two
	// surviving replicas that hold the same (version, writer) of an
	// object hold identical bytes. Each process's writes carry strictly
	// increasing versions, so (writer, version) names one unique write
	// and the bytes must match wherever it landed — sound for every
	// lookahead protocol, even under loss (replicas merely end up at
	// different versions, which the delivery check covers separately).
	Convergence bool
	// InterestSafety enables the interest-management visibility check: no
	// process may miss an update for an object inside its sensing radius
	// once the object has been visible for InterestSlack ticks — the
	// interest machinery's budget for the flush-triggering rendezvous and
	// the enter-radius fetch round trip. Runs only on loss-free histories
	// without joins (loss and snapshots legitimately suppress or bypass
	// the per-apply evidence the check rests on).
	InterestSafety bool
	// InterestSlack is the delivery budget, in ticks, granted by
	// InterestSafety before a visible-but-stale object is a violation.
	// Zero means DefaultInterestSlack.
	InterestSlack int64
}

// DefaultInterestSlack is the InterestSafety budget used when
// Options.InterestSlack is zero: generous enough for an unbatched
// interest-paced schedule (stretch cap 4) plus a fetch round trip.
const DefaultInterestSlack = 16

// Violation is one invariant breach.
type Violation struct {
	// Class names the invariant: "clock", "sync-buffering",
	// "xlist-adherence", "pid-arbitration", "spatial-withhold",
	// "spatial-delivery", "delivery", "interest-safety", "convergence",
	// "lock-order", "lock-serialize".
	Class string
	// Proc is the process whose history exhibits the breach.
	Proc int
	// Event is the offending event (zero for store-level breaches).
	Event trace.Event
	// Detail explains the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] proc %d: %s (%s)", v.Class, v.Proc, v.Detail, v.Event)
}

// Report is the oracle's verdict over one history.
type Report struct {
	Violations []Violation
	// Events is the total number of events analyzed.
	Events int
}

// Ok reports whether every checked invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders the verdict; violations are capped at ten lines.
func (r *Report) String() string {
	if r.Ok() {
		return fmt.Sprintf("ok (%d events)", r.Events)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s) in %d events:", len(r.Violations), r.Events)
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// analyzer carries the working state of one Analyze call.
type analyzer struct {
	h    History
	opts Options
	rep  *Report
	// tanks[p][t] is process p's tank positions at tick t (from OpTankAt).
	tanks []map[int64][][2]int
	// finalTick[p] is the last OpTick time in p's history.
	finalTick []int64
	// consumed[q] holds q's consumed (sender, SYNC stamp) pairs; a
	// consumed SYNC proves everything the sender shipped up to that stamp
	// arrived while q was alive to process it (in-order links).
	consumed []map[syncKey]bool
	// hasJoin reports whether any process joined or was admitted (state
	// transferred via snapshots bypasses the event log, weakening the
	// per-process version tracking from exact to a lower bound).
	hasJoin bool
}

type syncKey struct {
	from  int32
	stamp int64
}

// Analyze replays the history and returns every invariant breach found.
func Analyze(h History, opts Options) *Report {
	a := &analyzer{h: h, opts: opts, rep: &Report{}}
	a.prescan()
	for p := range h.Procs {
		a.rep.Events += len(h.Procs[p])
		a.checkClock(p)
		a.checkAdherence(p)
		a.checkPIDLocal(p)
		if opts.Spatial {
			a.checkWithholding(p)
		}
		if opts.DeliveryBound {
			a.checkDeliveryBound(p)
		}
		if opts.EC {
			a.checkLocksApp(p)
			a.checkLocksMgr(p)
		}
	}
	if !opts.Lossy {
		a.checkDelivery()
		a.checkPIDGlobal()
		if opts.InterestSafety {
			a.checkInterestSafety()
		}
	}
	if opts.Convergence {
		a.checkConvergence()
	}
	return a.rep
}

func (a *analyzer) fail(class string, proc int, ev trace.Event, format string, args ...any) {
	a.rep.Violations = append(a.rep.Violations, Violation{
		Class: class, Proc: proc, Event: ev, Detail: fmt.Sprintf(format, args...),
	})
}

// prescan indexes tank positions and final ticks, and detects joins.
func (a *analyzer) prescan() {
	n := len(a.h.Procs)
	a.tanks = make([]map[int64][][2]int, n)
	a.finalTick = make([]int64, n)
	a.consumed = make([]map[syncKey]bool, n)
	for p, evs := range a.h.Procs {
		a.tanks[p] = make(map[int64][][2]int)
		a.consumed[p] = make(map[syncKey]bool)
		for _, e := range evs {
			switch e.Op {
			case trace.OpTankAt:
				a.tanks[p][e.Time] = append(a.tanks[p][e.Time], [2]int{int(e.Obj), int(e.Ver)})
			case trace.OpTick:
				if e.Time > a.finalTick[p] {
					a.finalTick[p] = e.Time
				}
			case trace.OpSyncRecv:
				a.consumed[p][syncKey{e.Peer, e.Aux}] = true
			case trace.OpJoined, trace.OpAdmit:
				a.hasJoin = true
			}
		}
	}
}

// checkClock verifies logical-clock monotonicity (+1 per Exchange, forward
// jumps only via Join) and the SYNC buffering rule: a SYNC is consumed only
// once the local clock has caught up to its stamp, and consumed stamps from
// one peer never regress.
func (a *analyzer) checkClock(p int) {
	prev := int64(0)
	floor := make(map[int32]int64) // peer → highest consumed SYNC stamp
	for _, e := range a.h.Procs[p] {
		switch e.Op {
		case trace.OpTick:
			if e.Time != prev+1 {
				a.fail("clock", p, e, "tick %d after tick %d (want +1)", e.Time, prev)
			}
			prev = e.Time
		case trace.OpJoined:
			if e.Time < prev {
				a.fail("clock", p, e, "join regressed clock to %d from %d", e.Time, prev)
			}
			prev = e.Time
		case trace.OpSyncRecv:
			if e.Aux > e.Time {
				a.fail("sync-buffering", p, e, "SYNC stamped %d consumed at tick %d (must buffer until clock catches up)", e.Aux, e.Time)
			}
			// Equal stamps are tolerated: a duplicated SYNC can
			// legitimately be re-consumed when the peer is not
			// outstanding. A lower stamp after a higher one means
			// out-of-order consumption.
			if f, ok := floor[e.Peer]; ok && e.Aux < f {
				a.fail("sync-buffering", p, e, "SYNC from %d stamped %d consumed after stamp %d", e.Peer, e.Aux, f)
			}
			if e.Aux > floor[e.Peer] {
				floor[e.Peer] = e.Aux
			}
		}
	}
}

// checkAdherence verifies exchange-list adherence: once a rendezvous with a
// peer is scheduled at tick T, the local clock must not pass T without the
// exchange completing (OpRendezvous reschedules it) unless the peer departed
// (DONE or eviction). The check is prefix-closed: a schedule still open when
// the history ends (crash, game over) is not a breach.
func (a *analyzer) checkAdherence(p int) {
	sched := make(map[int32]int64)
	var peers []int32 // deterministic iteration order
	set := func(peer int32, t int64) {
		if _, ok := sched[peer]; !ok {
			peers = append(peers, peer)
			sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		}
		sched[peer] = t
	}
	for _, e := range a.h.Procs[p] {
		switch e.Op {
		case trace.OpSched, trace.OpAdmit:
			set(e.Peer, e.Aux)
		case trace.OpRendezvous:
			set(e.Peer, e.Aux)
		case trace.OpPeerDone, trace.OpEvict:
			delete(sched, e.Peer)
		case trace.OpTick:
			for _, peer := range peers {
				t, ok := sched[peer]
				if ok && t < e.Time {
					a.fail("xlist-adherence", p, e, "clock reached %d but rendezvous with %d was due at %d", e.Time, peer, t)
					delete(sched, peer) // report once
				}
			}
		}
	}
}

// checkPIDLocal verifies data-race arbitration within one process's history:
// versions per object never regress, and on a version tie the lower PID
// wins — an apply must come from a strictly lower PID than the current
// writer, and a tie-loss discard (OpStale aux=1) must not have discarded a
// lower-PID write. Tracked state is a lower bound on the real store when
// snapshots are in play (joins), which keeps the checks sound: the real
// version is never below the tracked one.
func (a *analyzer) checkPIDLocal(p int) {
	type ow struct {
		ver    int64
		writer int32 // -1 unknown
	}
	objs := make(map[int64]ow)
	for _, e := range a.h.Procs[p] {
		switch e.Op {
		case trace.OpJoined:
			// A mid-trace join is a crash-restart boundary: the process
			// resumed from a peer's snapshot, and any suffix of its previous
			// incarnation may have been rolled back. Tracked state from the
			// old life is no longer a lower bound, so it restarts here.
			objs = make(map[int64]ow)
		case trace.OpWrite:
			cur := objs[e.Obj]
			if cur.ver != 0 && e.Ver <= cur.ver {
				a.fail("pid-arbitration", p, e, "local write produced version %d not above %d", e.Ver, cur.ver)
			}
			objs[e.Obj] = ow{ver: e.Ver, writer: int32(p)}
		case trace.OpApply:
			cur, known := objs[e.Obj]
			if known {
				if e.Ver < cur.ver {
					a.fail("pid-arbitration", p, e, "applied version %d below current %d", e.Ver, cur.ver)
				} else if e.Ver == cur.ver && cur.writer >= 0 && e.Peer >= cur.writer {
					a.fail("pid-arbitration", p, e, "tie at version %d: applied write from PID %d over current writer %d (lower PID must win)", e.Ver, e.Peer, cur.writer)
				}
			}
			objs[e.Obj] = ow{ver: e.Ver, writer: e.Peer}
		case trace.OpAdopt:
			// A fetch reply adopted version-gated full state. The serving
			// peer is not the writer, so the writer becomes unknown and
			// later tie arbitration on this version is not checkable.
			if cur, known := objs[e.Obj]; !known || e.Ver >= cur.ver {
				objs[e.Obj] = ow{ver: e.Ver, writer: -1}
			}
		case trace.OpStale:
			cur, known := objs[e.Obj]
			if !known {
				continue
			}
			if e.Aux == 1 {
				// Tie-loss: discarding is only right if the sender's
				// PID is not below the current writer's.
				if e.Ver == cur.ver && cur.writer >= 0 && e.Peer < cur.writer {
					a.fail("pid-arbitration", p, e, "tie at version %d: discarded write from lower PID %d while writer is %d", e.Ver, e.Peer, cur.writer)
				}
			} else if !a.hasJoin && e.Ver >= cur.ver {
				// Old-version discard of a not-old version. Only
				// checkable without joins: a snapshot can raise the
				// real store above the tracked version.
				a.fail("pid-arbitration", p, e, "discarded version %d as stale but tracked version is %d", e.Ver, cur.ver)
			}
		}
	}
}

// minDistToTanks returns the minimum Manhattan distance from obj to any of
// the peer's tank positions at tick t; ok is false when no positions were
// recorded for that tick.
func (a *analyzer) minDistToTanks(obj int64, peer int, t int64) (int, bool) {
	if peer < 0 || peer >= len(a.tanks) {
		return 0, false
	}
	ps := a.tanks[peer][t]
	if len(ps) == 0 {
		return 0, false
	}
	ox, oy := a.opts.ObjPos(obj)
	best := -1
	for _, tp := range ps {
		d := absInt(tp[0]-ox) + absInt(tp[1]-oy)
		if best < 0 || d < best {
			best = d
		}
	}
	return best, true
}

// checkWithholding verifies the s-function's soundness side: an update may
// be withheld from a peer only when the object is outside the peer's
// interaction radius. The runtime withholds only above believed distance
// radius+3, and believed positions drift at most one cell per tick between
// rendezvous while both sides advance in lockstep around the shared
// exchange tick, so a withheld object is never within the true radius.
func (a *analyzer) checkWithholding(p int) {
	for _, e := range a.h.Procs[p] {
		if e.Op != trace.OpWithheld {
			continue
		}
		d, ok := a.minDistToTanks(e.Obj, int(e.Peer), e.Time)
		if !ok {
			continue // no ground-truth positions at that tick
		}
		if d <= a.opts.Radius {
			a.fail("spatial-withhold", p, e, "object %d withheld from %d at tick %d but its nearest tank is %d away (radius %d)", e.Obj, e.Peer, e.Time, d, a.opts.Radius)
		}
	}
}

// checkDeliveryBound verifies MSYNC2's relevance side: a DATA message to a
// peer must be justified by proximity. The filter approves a flush when the
// believed tank-to-tank distance is within the radius plus staleness slack,
// or — the correctness backstop — when the peer could be walking into the
// box of withheld writes. Believed positions drift at most one cell per
// tick since the last rendezvous, so an actual delivery is only legitimate
// when the peer's tanks are within radius + 3*sinceRendezvous + pad of ours,
// or within radius + 2*sinceRendezvous + pad of the bounding box of the
// objects the message carries (pad 8, doubled on lossy runs where delayed
// SYNCs widen the believed-position staleness).
func (a *analyzer) checkDeliveryBound(p int) {
	lastRend := make(map[int32]int64)
	fresh := make(map[int32]bool) // peer admitted since last rendezvous
	sent := make(map[int32][]int64)
	for _, e := range a.h.Procs[p] {
		switch e.Op {
		case trace.OpRendezvous:
			lastRend[e.Peer] = e.Time
			delete(fresh, e.Peer)
		case trace.OpAdmit:
			fresh[e.Peer] = true
		case trace.OpSendObj:
			sent[e.Peer] = append(sent[e.Peer], e.Obj)
		case trace.OpDataSend:
			objs := sent[e.Peer]
			sent[e.Peer] = nil
			if fresh[e.Peer] {
				continue // no believed position yet after a (re)join
			}
			since := e.Time - lastRend[e.Peer]
			if since < 0 {
				since = 0
			}
			pad := int64(8)
			if a.opts.Lossy {
				// Ambient delays can hold a SYNC in flight past the
				// rendezvous the trace records, so the believed position
				// the filter acted on can be staler than sinceRendezvous
				// by the fault plan's delay budget.
				pad = 16
			}
			tankBound := int64(a.opts.Radius) + 3*since + pad
			d, ok := a.pairDist(p, int(e.Peer), e.Time)
			if !ok || int64(d) <= tankBound {
				continue
			}
			boxBound := int64(a.opts.Radius) + 2*since + pad
			bd, bok := a.boxDist(objs, int(e.Peer), e.Time)
			if bok && int64(bd) <= boxBound {
				continue
			}
			a.fail("spatial-delivery", p, e, "DATA to %d stamped %d but tank distance %d exceeds relevance bound %d and box distance %d exceeds %d (radius %d, %d ticks since rendezvous)", e.Peer, e.Time, d, tankBound, bd, boxBound, a.opts.Radius, since)
		}
	}
}

// boxDist returns the minimum Manhattan distance from the peer's tanks at
// tick t to the bounding box of the given objects (the region the filter's
// box backstop guards); ok is false when either side is empty.
func (a *analyzer) boxDist(objs []int64, peer int, t int64) (int, bool) {
	if len(objs) == 0 || peer < 0 || peer >= len(a.tanks) {
		return 0, false
	}
	ps := a.tanks[peer][t]
	if len(ps) == 0 {
		return 0, false
	}
	minX, minY, maxX, maxY := 0, 0, 0, 0
	for i, obj := range objs {
		x, y := a.opts.ObjPos(obj)
		if i == 0 || x < minX {
			minX = x
		}
		if i == 0 || x > maxX {
			maxX = x
		}
		if i == 0 || y < minY {
			minY = y
		}
		if i == 0 || y > maxY {
			maxY = y
		}
	}
	best := -1
	for _, tp := range ps {
		d := 0
		if tp[0] < minX {
			d += minX - tp[0]
		} else if tp[0] > maxX {
			d += tp[0] - maxX
		}
		if tp[1] < minY {
			d += minY - tp[1]
		} else if tp[1] > maxY {
			d += tp[1] - maxY
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, true
}

// pairDist returns the minimum Manhattan distance between p's and q's tanks
// at tick t; ok is false if either side has no recorded positions there.
func (a *analyzer) pairDist(p, q int, t int64) (int, bool) {
	if q < 0 || q >= len(a.tanks) {
		return 0, false
	}
	ps, qs := a.tanks[p][t], a.tanks[q][t]
	if len(ps) == 0 || len(qs) == 0 {
		return 0, false
	}
	best := -1
	for _, pp := range ps {
		for _, qq := range qs {
			d := absInt(pp[0]-qq[0]) + absInt(pp[1]-qq[1])
			if best < 0 || d < best {
				best = d
			}
		}
	}
	return best, true
}

// checkDelivery verifies exchange-list completeness on loss-free runs:
// every diff a process flushed toward a peer at a rendezvous the peer
// honoured must be reflected in that peer's final replica (its version
// there is at least the flushed version). The peer honoured the rendezvous
// iff it consumed the sender's SYNC of that tick — DATA precedes SYNC on
// the in-order link, so a consumed SYNC proves the diff arrived while the
// peer was alive to apply it. Flushes whose rendezvous the peer never
// completed (it finished or was evicted first, or the stamp was an
// end-of-game courtesy flush) carry no delivery obligation.
func (a *analyzer) checkDelivery() {
	for p, evs := range a.h.Procs {
		for _, e := range evs {
			if e.Op != trace.OpSendObj {
				continue
			}
			q := int(e.Peer)
			if q < 0 || q >= len(a.h.Stores) || a.h.Stores[q] == nil {
				continue
			}
			if len(a.h.Crashed) > q && a.h.Crashed[q] {
				continue
			}
			if !a.consumed[q][syncKey{int32(p), e.Time}] {
				continue // the peer never honoured this rendezvous
			}
			ver, err := a.h.Stores[q].Version(store.ID(e.Obj))
			if err != nil {
				continue
			}
			if ver < e.Ver {
				a.fail("delivery", q, e, "proc %d flushed object %d at version %d (stamp %d) but replica holds version %d", p, e.Obj, e.Ver, e.Time, ver)
			}
		}
	}
}

// checkInterestSafety verifies the interest-management visibility
// invariant: a player never misses an update for an object inside its
// sensing radius. For every write (p, obj, ver) and every other process
// q, the check finds the first tick at or after the write at which obj
// lies within q's radius; q's replica must then reflect a version at
// least ver within InterestSlack ticks — the budget covering the
// stretched rendezvous that flushes the withheld update plus the
// enter-radius fetch round trip. Obligations that outlive either
// process's history, or involve an eviction between the pair, are
// excused; joins disable the check entirely (snapshot catch-up bypasses
// the per-apply evidence, making the applied-version timeline a lower
// bound that would yield false violations).
func (a *analyzer) checkInterestSafety() {
	if a.hasJoin {
		return
	}
	slack := a.opts.InterestSlack
	if slack <= 0 {
		slack = DefaultInterestSlack
	}
	type verAt struct {
		t   int64
		ver int64
	}
	// verHist[q][obj] is the time-ordered prefix-max of versions q's
	// replica held (own writes, applied remote writes, and adopted fetch
	// replies).
	n := len(a.h.Procs)
	verHist := make([]map[int64][]verAt, n)
	for q, evs := range a.h.Procs {
		verHist[q] = make(map[int64][]verAt)
		for _, e := range evs {
			if e.Op != trace.OpWrite && e.Op != trace.OpApply && e.Op != trace.OpAdopt {
				continue
			}
			hist := verHist[q][e.Obj]
			if len(hist) > 0 && e.Ver <= hist[len(hist)-1].ver {
				continue // prefix-max: only version raises matter
			}
			verHist[q][e.Obj] = append(hist, verAt{t: e.Time, ver: e.Ver})
		}
	}
	// verBy returns the highest version q held of obj at any event time
	// <= t (histories are time-ordered, so the slice is sorted).
	verBy := func(q int, obj, t int64) int64 {
		best := int64(0)
		for _, va := range verHist[q][obj] {
			if va.t > t {
				break
			}
			best = va.ver
		}
		return best
	}
	for p, evs := range a.h.Procs {
		for _, e := range evs {
			if e.Op != trace.OpWrite {
				continue
			}
			for q := 0; q < n; q++ {
				if q == p {
					continue
				}
				if len(a.h.Crashed) > q && a.h.Crashed[q] {
					continue
				}
				if a.evicted(q, int32(p)) || a.evicted(p, int32(q)) {
					continue
				}
				// First tick at or after the write where obj is visible
				// to q.
				visible := int64(-1)
				for t := e.Time; t <= a.finalTick[q]; t++ {
					d, ok := a.minDistToTanks(e.Obj, q, t)
					if ok && d <= a.opts.Radius {
						visible = t
						break
					}
				}
				if visible < 0 {
					continue // never visible: no obligation
				}
				deadline := visible + slack
				if deadline > a.finalTick[q] {
					continue // the history ends inside the budget
				}
				if got := verBy(q, e.Obj, deadline); got < e.Ver {
					a.fail("interest-safety", q, e,
						"proc %d wrote object %d version %d at tick %d; visible to %d from tick %d but its replica held only version %d by tick %d (slack %d)",
						p, e.Obj, e.Ver, e.Time, q, visible, got, deadline, slack)
				}
			}
		}
	}
}

// evicted reports whether process q evicted peer at any point.
func (a *analyzer) evicted(q int, peer int32) bool {
	for _, e := range a.h.Procs[q] {
		if e.Op == trace.OpEvict && e.Peer == peer {
			return true
		}
	}
	return false
}

// checkPIDGlobal verifies race arbitration across replicas on loss-free
// runs: when several processes write the same version of an object, every
// surviving replica that settles on that version must credit the lowest
// competing PID whose write actually reached it in time.
func (a *analyzer) checkPIDGlobal() {
	type key struct {
		obj, ver int64
	}
	writers := make(map[key][]int)
	for p, evs := range a.h.Procs {
		for _, e := range evs {
			if e.Op == trace.OpWrite {
				k := key{e.Obj, e.Ver}
				writers[k] = append(writers[k], p)
			}
		}
	}
	for k, ws := range writers {
		if len(ws) < 2 {
			continue // no race
		}
		winner := ws[0]
		for _, w := range ws[1:] {
			if w < winner {
				winner = w
			}
		}
		for q, st := range a.h.Stores {
			if st == nil || (len(a.h.Crashed) > q && a.h.Crashed[q]) {
				continue
			}
			ver, err := st.Version(store.ID(k.obj))
			if err != nil || ver != k.ver {
				continue // replica moved past (or never reached) the race
			}
			w, err := st.WriterOf(store.ID(k.obj))
			if err != nil || w < 0 || w == winner {
				continue
			}
			if q == winner {
				// The winner's own replica credits someone else at the
				// same version: it applied an equal-version write over
				// its own, which the tie-break forbids outright.
				a.fail("pid-arbitration", q, trace.Event{Op: trace.OpWrite, Obj: k.obj, Ver: k.ver},
					"winner %d's replica credits PID %d at version %d", winner, w, k.ver)
				continue
			}
			if !a.reached(winner, q, k.obj, k.ver) {
				continue // the winning write never made it to q in time
			}
			a.fail("pid-arbitration", q, trace.Event{Op: trace.OpWrite, Obj: k.obj, Ver: k.ver},
				"replica settled on PID %d at version %d of object %d but PID %d also wrote it and is lower", w, k.ver, k.obj, winner)
		}
	}
}

// reached reports whether writer's flush of (obj, ver) toward q was part
// of a rendezvous q honoured (so the tie-break had the chance to fire).
func (a *analyzer) reached(writer, q int, obj, ver int64) bool {
	if a.evicted(q, int32(writer)) {
		return false
	}
	for _, e := range a.h.Procs[writer] {
		if e.Op == trace.OpSendObj && int(e.Peer) == q && e.Obj == obj && e.Ver >= ver &&
			a.consumed[q][syncKey{int32(writer), e.Time}] {
			return true
		}
	}
	return false
}

// checkConvergence asserts post-quiescence agreement: replicas holding the
// same (version, writer) of an object hold the same bytes. Replicas at
// different versions simply quiesced at different points of the same write
// history — the delivery check separately ensures nothing in-flight was
// silently lost on loss-free runs.
func (a *analyzer) checkConvergence() {
	var live []int
	for q, st := range a.h.Stores {
		if st == nil || (len(a.h.Crashed) > q && a.h.Crashed[q]) {
			continue
		}
		live = append(live, q)
	}
	if len(live) < 2 {
		return
	}
	for _, id := range a.h.Stores[live[0]].IDs() {
		for i, p := range live {
			pv, err := a.h.Stores[p].Version(id)
			if err != nil {
				continue
			}
			pw, _ := a.h.Stores[p].WriterOf(id)
			for _, q := range live[i+1:] {
				qv, err := a.h.Stores[q].Version(id)
				if err != nil || qv != pv {
					continue
				}
				qw, _ := a.h.Stores[q].WriterOf(id)
				if qw != pw {
					continue // a racing write; checkPIDGlobal arbitrates
				}
				pb, _ := a.h.Stores[p].Get(id)
				qb, _ := a.h.Stores[q].Get(id)
				if !bytesEqual(pb, qb) {
					a.fail("convergence", q, trace.Event{Obj: int64(id), Ver: pv},
						"object %d at version %d (writer %d) differs from proc %d's copy", id, pv, pw, p)
				}
			}
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkLocksApp verifies the application side of entry consistency: lock
// requests within one tick are issued in ascending object order (the
// deadlock-avoidance total order), and every write happens under a held
// write lock.
func (a *analyzer) checkLocksApp(p int) {
	heldWrite := make(map[int64]bool)
	lastReq := int64(-1)
	for _, e := range a.h.Procs[p] {
		switch e.Op {
		case trace.OpTick:
			lastReq = -1
		case trace.OpLockReq:
			if e.Obj <= lastReq {
				a.fail("lock-order", p, e, "lock on object %d requested after object %d within one tick (must ascend)", e.Obj, lastReq)
			}
			lastReq = e.Obj
		case trace.OpLockGranted:
			if e.Aux == 1 {
				heldWrite[e.Obj] = true
			}
		case trace.OpLockRel:
			delete(heldWrite, e.Obj)
		case trace.OpWrite:
			if !heldWrite[e.Obj] {
				a.fail("lock-serialize", p, e, "write to object %d without a held write lock", e.Obj)
			}
		}
	}
}

// checkLocksMgr verifies the manager side: grants never overlap a write
// hold (a write grant excludes all other holders; a read grant excludes
// write holders), and the version carried per object never regresses.
// Both are strict only on loss-free runs — a lost release leaves a phantom
// holder behind, and retransmitted requests can be re-granted from state
// that predates an in-flight release.
func (a *analyzer) checkLocksMgr(p int) {
	type hold struct{ mode int64 }
	holders := make(map[int64]map[int32]hold)
	lastVer := make(map[int64]int64)
	for _, e := range a.h.Procs[p] {
		switch e.Op {
		case trace.OpMgrGrant:
			hs := holders[e.Obj]
			if hs == nil {
				hs = make(map[int32]hold)
				holders[e.Obj] = hs
			}
			if !a.opts.Lossy {
				for other, h := range hs {
					if other == e.Peer {
						continue // re-grant to the current holder
					}
					if e.Aux == 1 || h.mode == 1 {
						a.fail("lock-serialize", p, e, "granted object %d to %d (mode %d) while %d holds it (mode %d)", e.Obj, e.Peer, e.Aux, other, h.mode)
					}
				}
			}
			if !a.opts.Lossy && e.Ver < lastVer[e.Obj] {
				a.fail("lock-serialize", p, e, "grant carries version %d below the last released %d", e.Ver, lastVer[e.Obj])
			}
			hs[e.Peer] = hold{mode: e.Aux}
		case trace.OpMgrRelease:
			if hs := holders[e.Obj]; hs != nil {
				delete(hs, e.Peer)
			}
			if e.Aux == 1 && e.Ver > lastVer[e.Obj] {
				lastVer[e.Obj] = e.Ver
			}
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
