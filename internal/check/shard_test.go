package check

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestShardRunnerCleanGrid sweeps fault-free schedules across shard
// counts: handoffs interleaved with puts and reordered deliveries must
// never trip an invariant.
func TestShardRunnerCleanGrid(t *testing.T) {
	for _, shards := range []int{1, 4, 8, 16} {
		res := Explore(ExploreConfig{
			Schedules: 12, BaseSeed: 1, Ticks: 64, Teams: 4, FaultEvery: 0,
		}, ShardRunner(shards))
		if !res.Ok() {
			t.Fatalf("shards=%d: %v", shards, res.Failures[0])
		}
		if res.Events == 0 {
			t.Fatalf("shards=%d: no events explored", shards)
		}
	}
}

// TestShardRunnerFaultGrid arms the three mid-handoff crash points over
// the chaos seeds and checks ownership always resolves with no lost
// acked writes.
func TestShardRunnerFaultGrid(t *testing.T) {
	for _, shards := range []int{4, 8, 16} {
		for _, seed := range []int64{7, 13, 21, 33, 57} {
			res := Explore(ExploreConfig{
				Schedules: 6, BaseSeed: seed, Ticks: 96, Teams: 5, FaultEvery: 1,
			}, ShardRunner(shards))
			if !res.Ok() {
				t.Fatalf("shards=%d seed=%d: %v", shards, seed, res.Failures[0])
			}
		}
	}
}

// TestShardRunnerRejectsBadCounts pins the config errors.
func TestShardRunnerRejectsBadCounts(t *testing.T) {
	for _, shards := range []int{0, -1, 3, 513} {
		if _, err := ShardRunner(shards)(Scenario{Seed: 1, Ticks: 8, Teams: 3}); err == nil {
			t.Errorf("shards=%d accepted", shards)
		}
	}
}

// TestShardOracleCatchesDroppedSnapshots breaks the write-ahead rule —
// start records logged without the region snapshot — and requires the
// lost-write invariant to notice once a source dies mid-handoff.
func TestShardOracleCatchesDroppedSnapshots(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 40 && !found; seed++ {
		rep, err := shardRunner(4, shardSabotage{dropSnaps: true})(
			Scenario{Seed: seed, Ticks: 96, Teams: 5, Faults: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			if v.Class == "shard-lost-write" {
				found = true
			}
			if !strings.HasPrefix(v.Class, "shard-") {
				t.Fatalf("unexpected violation class %q", v.Class)
			}
		}
	}
	if !found {
		t.Fatal("dropped write-ahead snapshots never produced a shard-lost-write violation")
	}
}

// TestShardOracleCatchesForgedTerminals appends rival terminal records
// and requires the atomicity invariant to notice.
func TestShardOracleCatchesForgedTerminals(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		rep, err := shardRunner(4, shardSabotage{forgeTerminal: true})(
			Scenario{Seed: seed, Ticks: 48, Teams: 4, Faults: false})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			if v.Class == "shard-handoff-atomicity" || v.Class == "shard-epoch-owner" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("forged terminal records never produced an atomicity violation")
	}
}

// TestShardChaosMatrix is the CI shard-chaos-matrix entry point:
// CHAOS_SEED picks the base seed (default 13) and the test explores the
// faulted handoff grid — every shard count, every mid-handoff crash
// point armed — twice per count, demanding clean reports, real crash
// coverage, and byte-identical replays.
func TestShardChaosMatrix(t *testing.T) {
	seed := int64(13)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	for _, shards := range []int{4, 8, 16} {
		cfg := ExploreConfig{
			Schedules: 8, BaseSeed: seed, Ticks: 96, Teams: 5, FaultEvery: 1,
		}
		a := Explore(cfg, ShardRunner(shards))
		if !a.Ok() {
			t.Fatalf("shards=%d seed=%d: %v", shards, seed, a.Failures[0])
		}
		if a.Events == 0 {
			t.Fatalf("shards=%d seed=%d: no events explored", shards, seed)
		}
		b := Explore(cfg, ShardRunner(shards))
		if a.Events != b.Events || len(a.Failures) != len(b.Failures) {
			t.Fatalf("shards=%d seed=%d: replay diverged: %d/%d events, %d/%d failures",
				shards, seed, a.Events, b.Events, len(a.Failures), len(b.Failures))
		}
	}
}

// TestShardSimDeterministic reruns one faulted schedule and requires
// byte-identical reports and event counts.
func TestShardSimDeterministic(t *testing.T) {
	sc := Scenario{Seed: 21, Ticks: 128, Teams: 5, Faults: true}
	a, err := ShardRunner(8)(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShardRunner(8)(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || len(a.Violations) != len(b.Violations) {
		t.Fatalf("same scenario diverged: %d/%d events, %d/%d violations",
			a.Events, b.Events, len(a.Violations), len(b.Violations))
	}
	if a.String() != b.String() {
		t.Fatalf("reports differ:\n%s\n%s", a, b)
	}
}
