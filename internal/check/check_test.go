package check

import (
	"strings"
	"testing"

	"sdso/internal/diff"
	"sdso/internal/store"
	"sdso/internal/trace"
)

// ev builds one event.
func ev(op trace.Op, peer int, obj, ver, t, aux int64) trace.Event {
	return trace.Event{Op: op, Peer: int32(peer), Obj: obj, Ver: ver, Time: t, Aux: aux}
}

// cleanPair is a minimal two-process history that satisfies every temporal
// invariant: both processes tick 1..4, exchange with each other every tick,
// and proc 0 ships one write that proc 1 applies.
func cleanPair() History {
	mk := func(me, peer int) []trace.Event {
		var evs []trace.Event
		evs = append(evs, ev(trace.OpSched, peer, 0, 0, 0, 1))
		for t := int64(1); t <= 4; t++ {
			evs = append(evs,
				ev(trace.OpTick, -1, 0, 0, t, 0),
				ev(trace.OpSyncRecv, peer, 0, 0, t, t),
				ev(trace.OpRendezvous, peer, 0, 0, t, t+1),
			)
		}
		evs = append(evs, ev(trace.OpDone, -1, 0, 0, 4, 0))
		return evs
	}
	h := History{
		Procs:   [][]trace.Event{mk(0, 1), mk(1, 0)},
		Stores:  []*store.Store{store.New(), store.New()},
		Crashed: []bool{false, false},
	}
	for _, st := range h.Stores {
		if err := st.Register(7, []byte{0}); err != nil {
			panic(err)
		}
	}
	// Proc 0 writes object 7 at tick 2 and flushes it to proc 1 at tick 3;
	// proc 1 applies it.
	h.Procs[0] = append(h.Procs[0],
		ev(trace.OpWrite, 0, 7, 1, 2, 0),
		ev(trace.OpSendObj, 1, 7, 1, 3, 0),
		ev(trace.OpDataSend, 1, 0, 0, 3, 1),
	)
	h.Procs[1] = append(h.Procs[1], ev(trace.OpApply, 0, 7, 1, 3, 3))
	if _, err := h.Stores[0].UpdateBy(7, []byte{9}, 0); err != nil {
		panic(err)
	}
	if err := h.Stores[1].ApplyDiffFrom(7, replaceDiff([]byte{9}), 1, 0); err != nil {
		panic(err)
	}
	return h
}

func replaceDiff(b []byte) diff.Diff {
	cp := make([]byte, len(b))
	copy(cp, b)
	return diff.Diff{Replace: true, Len: len(cp), Runs: []diff.Run{{Off: 0, Data: cp}}}
}

// applyState brings a store's object to (data, version, writer) through the
// public API.
func applyState(t *testing.T, st *store.Store, id store.ID, data []byte, ver int64, writer int) {
	t.Helper()
	if err := st.ApplyDiffFrom(id, replaceDiff(data), ver, writer); err != nil {
		t.Fatal(err)
	}
}

func analyzeClean(t *testing.T, h History, opts Options) *Report {
	t.Helper()
	rep := Analyze(h, opts)
	if !rep.Ok() {
		t.Fatalf("clean history reported violations:\n%s", rep)
	}
	return rep
}

func wantClass(t *testing.T, rep *Report, class string) {
	t.Helper()
	if rep.Ok() {
		t.Fatalf("mutated history passed; want a %q violation", class)
	}
	for _, v := range rep.Violations {
		if v.Class == class {
			return
		}
	}
	t.Fatalf("no %q violation in:\n%s", class, rep)
}

func TestOracleCleanHistory(t *testing.T) {
	rep := analyzeClean(t, cleanPair(), Options{})
	if rep.Events == 0 {
		t.Fatal("no events analyzed")
	}
}

func TestOracleClockRegression(t *testing.T) {
	h := cleanPair()
	// Mutate proc 0's third tick to repeat tick 2: the clock must advance
	// by exactly one per exchange.
	for i, e := range h.Procs[0] {
		if e.Op == trace.OpTick && e.Time == 3 {
			h.Procs[0][i].Time = 2
			break
		}
	}
	wantClass(t, Analyze(h, Options{}), "clock")
}

func TestOracleSyncBuffering(t *testing.T) {
	h := cleanPair()
	// A SYNC stamped ahead of the local clock must be buffered, not
	// consumed.
	for i, e := range h.Procs[1] {
		if e.Op == trace.OpSyncRecv && e.Time == 2 {
			h.Procs[1][i].Aux = 4
			break
		}
	}
	wantClass(t, Analyze(h, Options{}), "sync-buffering")
}

func TestOracleSyncRegression(t *testing.T) {
	h := cleanPair()
	// Consuming a lower stamp after a higher one from the same peer is
	// out-of-order consumption.
	for i, e := range h.Procs[1] {
		if e.Op == trace.OpSyncRecv && e.Time == 4 {
			h.Procs[1][i].Aux = 1
			break
		}
	}
	wantClass(t, Analyze(h, Options{}), "sync-buffering")
}

func TestOracleDroppedExchange(t *testing.T) {
	h := cleanPair()
	// Delete proc 0's tick-2 rendezvous with proc 1: the clock then passes
	// the scheduled exchange without honouring it.
	var out []trace.Event
	for _, e := range h.Procs[0] {
		if e.Op == trace.OpRendezvous && e.Time == 2 {
			continue
		}
		out = append(out, e)
	}
	h.Procs[0] = out
	wantClass(t, Analyze(h, Options{}), "xlist-adherence")
}

func TestOracleOpenScheduleAtEndIsFine(t *testing.T) {
	h := cleanPair()
	// Dropping only the FINAL rendezvous leaves a schedule open when the
	// history ends — that is a crash-truncation shape, not a violation.
	var out []trace.Event
	for _, e := range h.Procs[0] {
		if e.Op == trace.OpRendezvous && e.Time == 4 {
			continue
		}
		out = append(out, e)
	}
	h.Procs[0] = out
	analyzeClean(t, h, Options{})
}

func TestOracleWrongPIDWinner(t *testing.T) {
	h := cleanPair()
	// Proc 1 writes object 7 at version 1 too (a data race with proc 0);
	// the tie must go to the lower PID, so proc 1 applying proc 0's write
	// is correct — but proc 1's replica crediting itself is not, and an
	// apply in the other direction (higher PID over lower) is the seeded
	// violation here: proc 0 applies proc 1's version-1 write over its own.
	h.Procs[0] = append(h.Procs[0], ev(trace.OpApply, 1, 7, 1, 4, 4))
	wantClass(t, Analyze(h, Options{}), "pid-arbitration")
}

func TestOracleWrongPIDDiscard(t *testing.T) {
	h := cleanPair()
	// Proc 1 holds proc 0's version-1 write, then discards a version-1
	// write from a lower PID... there is none below 0, so stage it on a
	// third proc: proc 1 applied writer 1's version first, then discarded
	// writer 0's equal version as a tie-loss — the lower PID must win.
	h.Procs[1] = append(h.Procs[1],
		ev(trace.OpApply, 1, 8, 1, 4, 4),
		ev(trace.OpStale, 0, 8, 1, 4, 1),
	)
	wantClass(t, Analyze(h, Options{}), "pid-arbitration")
}

func TestOracleVersionRegression(t *testing.T) {
	h := cleanPair()
	// Applying a version below the tracked one regresses the replica.
	h.Procs[1] = append(h.Procs[1], ev(trace.OpApply, 0, 7, 0, 4, 4))
	wantClass(t, Analyze(h, Options{}), "pid-arbitration")
}

func TestOracleCrossReplicaPIDWinner(t *testing.T) {
	h := cleanPair()
	// Both procs write object 7 at version 1 and both flushed to each
	// other, yet proc 1's replica credits itself (PID 1) — the lower
	// competing PID 0 must have won there.
	h.Procs[1] = append(h.Procs[1],
		ev(trace.OpWrite, 1, 7, 1, 2, 0),
		ev(trace.OpSendObj, 0, 7, 1, 3, 0),
		ev(trace.OpDataSend, 0, 0, 0, 3, 1),
	)
	applyState(t, h.Stores[1], 7, []byte{8}, 1, 1)
	wantClass(t, Analyze(h, Options{}), "pid-arbitration")
}

func TestOracleDroppedDelivery(t *testing.T) {
	h := cleanPair()
	// Proc 0 flushed (7, v1) to proc 1 at a rendezvous proc 1 honoured,
	// but proc 1's replica never got it.
	h.Stores[1] = store.New()
	if err := h.Stores[1].Register(7, []byte{0}); err != nil {
		t.Fatal(err)
	}
	wantClass(t, Analyze(h, Options{}), "delivery")
}

func TestOracleDeliveryExcusedOnLossy(t *testing.T) {
	h := cleanPair()
	h.Stores[1] = store.New()
	if err := h.Stores[1].Register(7, []byte{0}); err != nil {
		t.Fatal(err)
	}
	// Remove the now-inconsistent apply event as well: under loss the
	// diff never arrived.
	var out []trace.Event
	for _, e := range h.Procs[1] {
		if e.Op == trace.OpApply {
			continue
		}
		out = append(out, e)
	}
	h.Procs[1] = out
	analyzeClean(t, h, Options{Lossy: true})
}

func TestOracleConvergence(t *testing.T) {
	h := cleanPair()
	// Same (version, writer) on both replicas but different bytes.
	applyState(t, h.Stores[1], 7, []byte{5}, 1, 0)
	wantClass(t, Analyze(h, Options{Convergence: true}), "convergence")
}

func TestOracleSpatialWithholding(t *testing.T) {
	h := cleanPair()
	// Proc 1's tank sits on object 7's cell at tick 3, yet proc 0
	// withheld object 7 from it that tick.
	h.Procs[1] = append(h.Procs[1], ev(trace.OpTankAt, -1, 7, 0, 3, 0))
	h.Procs[0] = append(h.Procs[0], ev(trace.OpWithheld, 1, 7, 0, 3, 0))
	opts := Options{
		Spatial: true,
		Radius:  2,
		ObjPos:  func(obj int64) (int, int) { return int(obj), 0 },
	}
	wantClass(t, Analyze(h, opts), "spatial-withhold")
}

func TestOracleSpatialWithholdingFarIsFine(t *testing.T) {
	h := cleanPair()
	h.Procs[1] = append(h.Procs[1], ev(trace.OpTankAt, -1, 100, 0, 3, 0))
	h.Procs[0] = append(h.Procs[0], ev(trace.OpWithheld, 1, 7, 0, 3, 0))
	opts := Options{
		Spatial: true,
		Radius:  2,
		ObjPos:  func(obj int64) (int, int) { return int(obj), 0 },
	}
	analyzeClean(t, h, opts)
}

func TestOracleOutOfRangeDelivery(t *testing.T) {
	h := cleanPair()
	// MSYNC2: proc 0's DATA at tick 3 reaches a peer whose tanks are far
	// beyond any relevance bound, with no box justification either (the
	// sent object is co-located with proc 0's tank).
	h.Procs[0] = append(h.Procs[0], ev(trace.OpTankAt, -1, 0, 0, 3, 0))
	h.Procs[1] = append(h.Procs[1], ev(trace.OpTankAt, -1, 100, 0, 3, 0))
	opts := Options{
		DeliveryBound: true,
		Radius:        2,
		ObjPos:        func(obj int64) (int, int) { return int(obj), 0 },
	}
	wantClass(t, Analyze(h, opts), "spatial-delivery")
}

func TestOracleNearDeliveryIsFine(t *testing.T) {
	h := cleanPair()
	h.Procs[0] = append(h.Procs[0], ev(trace.OpTankAt, -1, 0, 0, 3, 0))
	h.Procs[1] = append(h.Procs[1], ev(trace.OpTankAt, -1, 9, 0, 3, 0))
	opts := Options{
		DeliveryBound: true,
		Radius:        2,
		ObjPos:        func(obj int64) (int, int) { return int(obj), 0 },
	}
	analyzeClean(t, h, opts)
}

func TestOracleECLockOrder(t *testing.T) {
	h := History{Procs: [][]trace.Event{{
		ev(trace.OpTick, -1, 0, 0, 1, 0),
		ev(trace.OpLockReq, 0, 9, 0, 0, 1),
		ev(trace.OpLockReq, 0, 3, 0, 0, 1), // descends: deadlock-prone
	}}}
	wantClass(t, Analyze(h, Options{EC: true}), "lock-order")
}

func TestOracleECLockOrderResetsPerTick(t *testing.T) {
	h := History{Procs: [][]trace.Event{{
		ev(trace.OpTick, -1, 0, 0, 1, 0),
		ev(trace.OpLockReq, 0, 9, 0, 0, 1),
		ev(trace.OpTick, -1, 0, 0, 2, 0),
		ev(trace.OpLockReq, 0, 3, 0, 0, 1), // new tick: fresh order
	}}}
	analyzeClean(t, h, Options{EC: true})
}

func TestOracleECWriteWithoutLock(t *testing.T) {
	h := History{Procs: [][]trace.Event{{
		ev(trace.OpTick, -1, 0, 0, 1, 0),
		ev(trace.OpWrite, 0, 9, 1, 0, 0),
	}}}
	wantClass(t, Analyze(h, Options{EC: true}), "lock-serialize")
}

func TestOracleECOverlappingGrant(t *testing.T) {
	h := History{Procs: [][]trace.Event{{
		ev(trace.OpMgrGrant, 1, 9, 0, 0, 1), // write grant to proc 1
		ev(trace.OpMgrGrant, 2, 9, 0, 0, 1), // ... and to proc 2, unreleased
	}}}
	wantClass(t, Analyze(h, Options{EC: true}), "lock-serialize")
}

func TestOracleECGrantAfterRelease(t *testing.T) {
	h := History{Procs: [][]trace.Event{{
		ev(trace.OpMgrGrant, 1, 9, 0, 0, 1),
		ev(trace.OpMgrRelease, 1, 9, 1, 0, 1),
		ev(trace.OpMgrGrant, 2, 9, 1, 0, 1),
	}}}
	analyzeClean(t, h, Options{EC: true})
}

func TestOracleECReadersShare(t *testing.T) {
	h := History{Procs: [][]trace.Event{{
		ev(trace.OpMgrGrant, 1, 9, 0, 0, 0),
		ev(trace.OpMgrGrant, 2, 9, 0, 0, 0), // two readers may overlap
	}}}
	analyzeClean(t, h, Options{EC: true})
}

func TestReportString(t *testing.T) {
	h := cleanPair()
	rep := Analyze(h, Options{})
	if got := rep.String(); !strings.Contains(got, "ok") {
		t.Fatalf("clean report string = %q", got)
	}
	h.Procs[0][1].Time = 9
	rep = Analyze(h, Options{})
	if got := rep.String(); !strings.Contains(got, "violation") {
		t.Fatalf("failing report string = %q", got)
	}
}
