// Shard-ownership invariants for the handoff engine (internal/shard): a
// deterministic, single-threaded simulator drives client puts, live
// handoffs, and seeded message reordering over a node group sharing one
// handoff log, killing handoff participants at the three mid-handoff
// crash points — source after HANDOFF_START, target after
// HANDOFF_STATE (before or after its commit), and both mid-transfer —
// and checks
//
//   - exactly one owner per (shard, epoch): no two processes ever act
//     as owner of the same shard epoch, and the log admits at most one
//     start and one terminal record per epoch ("shard-epoch-owner",
//     "shard-handoff-atomicity");
//   - handoffs are atomic: at quiescence every logged start has exactly
//     one terminal record — end, abort, or adoption ("shard-handoff-
//     atomicity");
//   - no acked write is lost across a migration: once a handoff's
//     write-ahead snapshot captures an acknowledged put, the resolved
//     owner of its shard holds it at or above its version no matter who
//     crashes; writes acked after the last snapshot are pinned only
//     while their acker lives — fail-stop loss of unreplicated state is
//     the checkpoint stream's domain, not the handoff protocol's
//     ("shard-lost-write");
//   - no region is orphaned or double-owned: at quiescence the resolved
//     owner is live and every live node's cached view names it
//     ("shard-orphan", "shard-view-divergence").
//
// The simulator plugs into Explore via ShardRunner, so violations
// shrink to printed repros exactly like the protocol and quorum
// schedules.
package check

import (
	"fmt"
	"math/rand"
	"sort"

	"sdso/internal/shard"
	"sdso/internal/store"
	"sdso/internal/wire"
)

// ShardRunner returns an Explore Runner that drives the shard handoff
// engine with the given shard count through one seeded schedule per
// Scenario. Scenario.Ticks is the step count, Scenario.Teams the node
// count, and Scenario.Faults arms the mid-handoff crash schedule.
func ShardRunner(shards int) Runner {
	return shardRunner(shards, shardSabotage{})
}

// shardSabotage exists so tests can break the engine's guarantees and
// prove the invariants catch it.
type shardSabotage struct {
	// dropSnaps erases the write-ahead snapshot from every logged start
	// record, so crash recovery loses pre-handoff writes.
	dropSnaps bool
	// forgeTerminal appends a rival terminal record after each commit,
	// violating the exactly-one-terminal rule.
	forgeTerminal bool
}

func shardRunner(shards int, sab shardSabotage) Runner {
	return func(sc Scenario) (*Report, error) {
		if shards < 1 {
			return nil, fmt.Errorf("check: shard count must be >= 1, got %d", shards)
		}
		sim, err := newShardSim(shards, sab, sc)
		if err != nil {
			return nil, err
		}
		return sim.run(), nil
	}
}

// shardEpoch keys the acting-owner bookkeeping.
type shardEpoch struct {
	shard int
	epoch int64
}

// putKey identifies one client put across retries.
type putKey struct {
	obj     store.ID
	version int64
}

// ackedPut is a put some owner acknowledged. covered marks it captured
// by a logged region snapshot: from then on it must survive any crash.
// An uncovered put is durable only as long as its acker lives —
// fail-stop loses unreplicated state; what the handoff protocol
// guarantees is that every write acked before a migration's write-ahead
// snapshot survives the migration and any crash within it.
type ackedPut struct {
	put     shard.Put
	proc    int
	epoch   int64
	covered bool
}

// Crash plans for one handoff, covering the chaos matrix's three
// mid-handoff kill points.
const (
	shardCrashNone = iota
	shardCrashSourceAfterStart
	shardCrashTargetAfterState
	shardCrashBoth
	shardCrashPlans
)

type shardSim struct {
	shards int
	nodes  int
	sab    shardSabotage
	part   *shard.Partition
	log    *shard.MemLog
	ns     []*shard.Node
	dead   map[int]bool
	rng    *rand.Rand
	faults bool
	steps  int

	queue       []*wire.Msg
	parked      []shard.Put          // puts awaiting (re)issue
	outstanding map[putKey]stalledAt // puts stalled inside a node
	vers        map[store.ID]int64   // per-object version counter
	acked       map[putKey]ackedPut  // every acknowledged put
	ownerAt     map[shardEpoch]int   // acting owner per shard epoch
	killOnState map[int]stateKill    // node -> armed kill at one State delivery

	rep *Report
}

type stalledAt struct {
	put  shard.Put
	proc int
}

// stateKill arms a target's death at one specific HANDOFF_STATE
// delivery: mode 1 dies before processing, mode 2 right after its
// commit.
type stateKill struct {
	shard int
	epoch int64
	mode  int
}

func newShardSim(shards int, sab shardSabotage, sc Scenario) (*shardSim, error) {
	nodes := sc.Teams
	if nodes < 3 {
		nodes = 3
	}
	part, err := shard.New(32, 24, shards)
	if err != nil {
		return nil, err
	}
	s := &shardSim{
		shards:      shards,
		nodes:       nodes,
		sab:         sab,
		part:        part,
		log:         shard.NewMemLog(),
		ns:          make([]*shard.Node, nodes),
		dead:        make(map[int]bool),
		rng:         rand.New(rand.NewSource(sc.Seed)),
		faults:      sc.Faults,
		steps:       sc.Ticks,
		outstanding: make(map[putKey]stalledAt),
		vers:        make(map[store.ID]int64),
		acked:       make(map[putKey]ackedPut),
		ownerAt:     make(map[shardEpoch]int),
		killOnState: make(map[int]stateKill),
		rep:         &Report{},
	}
	objects := 2 * shards
	for i := range s.ns {
		s.ns[i] = shard.NewNode(i, nodes, part, s.log, store.New())
		for o := 0; o < objects; o++ {
			s.ns[i].Bind(store.ID(o), o%shards)
		}
	}
	return s, nil
}

func (s *shardSim) violate(class string, proc int, format string, args ...any) {
	s.rep.Violations = append(s.rep.Violations, Violation{
		Class:  class,
		Proc:   proc,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (s *shardSim) live() []int {
	var out []int
	for i := 0; i < s.nodes; i++ {
		if !s.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// recordOwner notes that proc acted as owner of shard at epoch and
// checks no other process ever did.
func (s *shardSim) recordOwner(sh int, epoch int64, proc int) {
	key := shardEpoch{shard: sh, epoch: epoch}
	if prev, ok := s.ownerAt[key]; ok && prev != proc {
		s.violate("shard-epoch-owner", proc,
			"shard %d epoch %d owned by both %d and %d", sh, epoch, prev, proc)
		return
	}
	s.ownerAt[key] = proc
}

// ack records an acknowledged put. Coverage survives a re-ack: once a
// logged snapshot captured the write it stays pinned.
func (s *shardSim) ack(p shard.Put, proc int, epoch int64) {
	sh, _ := s.ns[proc].ShardOf(p.Obj)
	s.recordOwner(sh, epoch, proc)
	key := putKey{p.Obj, p.Version}
	ap := ackedPut{put: p, proc: proc, epoch: epoch}
	if old, ok := s.acked[key]; ok {
		ap.covered = old.covered
	}
	s.acked[key] = ap
}

// coverShard pins every acked put on shard sh: a start record carrying
// the region snapshot was just logged, so those writes are now in the
// write-ahead log and must survive any crash from here on.
func (s *shardSim) coverShard(sh int) {
	for key, a := range s.acked {
		if h, _ := s.ns[a.proc].ShardOf(key.obj); h == sh {
			a.covered = true
			s.acked[key] = a
		}
	}
}

// handleOutcome folds an engine Outcome back into the simulation.
func (s *shardSim) handleOutcome(proc int, out shard.Outcome) {
	s.queue = append(s.queue, out.Msgs...)
	for _, p := range out.Acked {
		delete(s.outstanding, putKey{p.Obj, p.Version})
		sh, _ := s.ns[proc].ShardOf(p.Obj)
		s.ack(p, proc, s.ns[proc].Owner(sh).Epoch)
	}
	for _, p := range out.Replay {
		delete(s.outstanding, putKey{p.Obj, p.Version})
		s.parked = append(s.parked, p)
	}
}

// kill fail-stops proc (keeping at least two nodes alive), loses its
// stalled puts back to the clients, and runs crash resolution on every
// survivor. Messages proc already sent stay in flight; mail addressed
// to it drops at delivery.
func (s *shardSim) kill(proc int) bool {
	if s.dead[proc] || len(s.live()) <= 2 {
		return false
	}
	s.dead[proc] = true
	delete(s.killOnState, proc)
	// Acked writes that no logged snapshot has captured yet live only in
	// the acker's store; fail-stop loses them. That loss is the
	// checkpoint machinery's problem (PR 6), not the handoff protocol's —
	// the no-lost-write invariant covers exactly the writes a migration's
	// write-ahead snapshot pinned, so uncovered acks die with their node.
	for key, a := range s.acked {
		if a.proc == proc && !a.covered {
			delete(s.acked, key)
		}
	}
	// Losing the dead node's stall queue back to the clients must not
	// leak map-iteration order into the schedule: park in key order.
	var lost []putKey
	for key, st := range s.outstanding {
		if st.proc == proc {
			lost = append(lost, key)
		}
	}
	sort.Slice(lost, func(i, j int) bool {
		if lost[i].obj != lost[j].obj {
			return lost[i].obj < lost[j].obj
		}
		return lost[i].version < lost[j].version
	})
	for _, key := range lost {
		s.parked = append(s.parked, s.outstanding[key].put)
		delete(s.outstanding, key)
	}
	live := s.live()
	for _, p := range live {
		s.handleOutcome(p, s.ns[p].PeerCrashed(proc, live))
	}
	s.checkLog()
	return true
}

// issuePut routes one put from a random entry node, following
// redirects; unplaceable puts (stale views naming a dead owner) park
// for retry.
func (s *shardSim) issuePut(p shard.Put) {
	live := s.live()
	cur := live[s.rng.Intn(len(live))]
	for hop := 0; hop <= s.nodes+1; hop++ {
		res := s.ns[cur].Put(p)
		switch res.Status {
		case shard.PutApplied:
			s.ack(p, cur, res.Epoch)
			return
		case shard.PutStalled:
			s.outstanding[putKey{p.Obj, p.Version}] = stalledAt{put: p, proc: cur}
			return
		case shard.PutRedirect:
			if res.Owner == cur || res.Owner < 0 || res.Owner >= s.nodes || s.dead[res.Owner] {
				s.parked = append(s.parked, p)
				return
			}
			cur = res.Owner
		}
	}
	s.parked = append(s.parked, p)
}

// newPut mints a put against a random object at the next version.
func (s *shardSim) newPut() shard.Put {
	obj := store.ID(s.rng.Intn(2 * s.shards))
	s.vers[obj]++
	v := s.vers[obj]
	return shard.Put{
		Obj:     obj,
		Data:    []byte(fmt.Sprintf("o%d-v%d", obj, v)),
		Version: v,
		Client:  s.rng.Intn(s.nodes),
	}
}

// startHandoff picks a live, non-migrating shard owner and a target,
// opens the handoff, and arms one of the three crash plans when faults
// are on.
func (s *shardSim) startHandoff() {
	var candidates []int
	for sh := 0; sh < s.shards; sh++ {
		v, pending := shard.Resolve(s.log.Records(), sh, s.nodes)
		if pending != nil || s.dead[v.Owner] || s.ns[v.Owner].Migrating(sh) {
			continue
		}
		candidates = append(candidates, sh)
	}
	if len(candidates) == 0 {
		return
	}
	sh := candidates[s.rng.Intn(len(candidates))]
	v, _ := shard.Resolve(s.log.Records(), sh, s.nodes)
	src := v.Owner
	var targets []int
	for _, p := range s.live() {
		if p != src {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return
	}
	dst := targets[s.rng.Intn(len(targets))]
	out, err := s.ns[src].StartHandoff(sh, dst)
	if err != nil {
		return
	}
	s.recordOwner(sh, v.Epoch, src)
	s.coverShard(sh)
	s.sabotageLog()
	plan := shardCrashNone
	if s.faults {
		plan = s.rng.Intn(shardCrashPlans)
	}
	// A kill refused by the crash budget (at least two nodes stay live)
	// must not strand the handoff: the State message then flows normally.
	switch plan {
	case shardCrashSourceAfterStart:
		// HANDOFF_START is delivered; HANDOFF_STATE dies with the source.
		s.queue = append(s.queue, out.Msgs[0])
		if !s.kill(src) {
			s.queue = append(s.queue, out.Msgs[1])
		}
	case shardCrashTargetAfterState:
		// The target dies at HANDOFF_STATE processing time: before its
		// commit (the transfer never lands) or right after (the end
		// record is logged and the end broadcast is in flight).
		s.queue = append(s.queue, out.Msgs...)
		s.killOnState[dst] = stateKill{
			shard: sh, epoch: v.Epoch + 1, mode: 1 + s.rng.Intn(2),
		}
	case shardCrashBoth:
		s.queue = append(s.queue, out.Msgs[0])
		if s.kill(src) {
			s.kill(dst)
		} else {
			s.queue = append(s.queue, out.Msgs[1])
		}
	default:
		s.queue = append(s.queue, out.Msgs...)
	}
	s.checkLog()
}

// sabotageLog mutates the freshest log record per the armed sabotage.
func (s *shardSim) sabotageLog() {
	recs := s.log.Records()
	if len(recs) == 0 {
		return
	}
	last := &recs[len(recs)-1]
	if s.sab.dropSnaps && last.Kind == shard.RecStart {
		last.Snap = store.New().Snapshot(0)
	}
}

// deliverOne delivers one random queued message.
func (s *shardSim) deliverOne() {
	if len(s.queue) == 0 {
		return
	}
	i := s.rng.Intn(len(s.queue))
	m := s.queue[i]
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	dst := int(m.Dst)
	if s.dead[dst] {
		return
	}
	if m.Kind == wire.KindHandoffState {
		if k, armed := s.killOnState[dst]; armed && k.shard == int(m.Obj) && k.epoch == m.Stamp {
			delete(s.killOnState, dst)
			switch k.mode {
			case 1: // die before processing: the transfer never lands
				if s.kill(dst) {
					return
				}
				// Budget refused the kill; fall through to a normal
				// delivery so the handoff is not stranded.
			case 2: // die right after committing
				s.handleOutcome(dst, s.ns[dst].Deliver(m))
				if s.sab.forgeTerminal {
					s.forgeTerminal(m)
				}
				s.checkLog()
				s.kill(dst)
				return
			}
		}
	}
	s.handleOutcome(dst, s.ns[dst].Deliver(m))
	if m.Kind == wire.KindHandoffState && s.sab.forgeTerminal {
		s.forgeTerminal(m)
	}
	s.checkLog()
}

// forgeTerminal appends a rival abort for the epoch the target just
// committed (sabotage only).
func (s *shardSim) forgeTerminal(m *wire.Msg) {
	s.log.Append(shard.Rec{
		Kind: shard.RecAbort, Shard: int(m.Obj),
		From: int(m.Src), To: int(m.Dst), Epoch: m.Stamp,
	})
}

// checkLog applies the structural log invariants: at most one start and
// at most one terminal record per (shard, epoch), and the acting-owner
// history must agree with the log's owner per epoch.
func (s *shardSim) checkLog() {
	starts := make(map[shardEpoch]int)
	terminals := make(map[shardEpoch]int)
	for _, r := range s.log.Records() {
		key := shardEpoch{shard: r.Shard, epoch: r.Epoch}
		switch r.Kind {
		case shard.RecStart:
			starts[key]++
			if starts[key] > 1 {
				s.violate("shard-handoff-atomicity", r.From,
					"shard %d epoch %d started %d times", r.Shard, r.Epoch, starts[key])
			}
		case shard.RecEnd, shard.RecAbort, shard.RecAssign:
			terminals[key]++
			if terminals[key] > 1 {
				s.violate("shard-handoff-atomicity", r.To,
					"shard %d epoch %d has %d terminal records", r.Shard, r.Epoch, terminals[key])
			}
			owner := r.To
			if r.Kind == shard.RecAbort {
				owner = r.From // the source keeps the shard
			}
			if prev, ok := s.ownerAt[key]; ok && prev != owner {
				s.violate("shard-epoch-owner", owner,
					"shard %d epoch %d: log says %d, %d already acted as owner", r.Shard, r.Epoch, owner, prev)
			}
			s.ownerAt[key] = owner
		}
	}
}

// drain delivers every queued message and retries parked puts until the
// system quiesces.
func (s *shardSim) drain() {
	for round := 0; round < 4*(s.nodes+s.shards)+8; round++ {
		for len(s.queue) > 0 {
			s.deliverOne()
		}
		if len(s.parked) == 0 {
			return
		}
		retry := s.parked
		s.parked = nil
		for _, p := range retry {
			s.issuePut(p)
		}
		if len(s.queue) == 0 && len(s.parked) == len(retry) {
			return // stuck puts (no live owner view yet); give up
		}
	}
}

// checkQuiescent applies the whole-system invariants once no messages
// are in flight.
func (s *shardSim) checkQuiescent() {
	recs := s.log.Records()
	for sh := 0; sh < s.shards; sh++ {
		v, pending := shard.Resolve(recs, sh, s.nodes)
		if pending != nil {
			// Participants both live would have completed during drain;
			// a dead participant resolves in kill. A pending start at
			// quiescence means the handoff neither finished nor aborted.
			s.violate("shard-handoff-atomicity", pending.From,
				"shard %d epoch %d still pending at quiescence (src %d dst %d)",
				sh, pending.Epoch, pending.From, pending.To)
			continue
		}
		if s.dead[v.Owner] {
			s.violate("shard-orphan", v.Owner,
				"shard %d resolved owner %d is dead at quiescence", sh, v.Owner)
			continue
		}
		for _, p := range s.live() {
			if got := s.ns[p].Owner(sh); got.Owner != v.Owner {
				s.violate("shard-view-divergence", p,
					"node %d believes shard %d belongs to %d, log says %d", p, sh, got.Owner, v.Owner)
			}
		}
	}
	// No lost writes: the resolved owner holds every acked put. Walk in
	// key order so any violations report deterministically.
	keys := make([]putKey, 0, len(s.acked))
	for key := range s.acked {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj != keys[j].obj {
			return keys[i].obj < keys[j].obj
		}
		return keys[i].version < keys[j].version
	})
	for _, key := range keys {
		a := s.acked[key]
		sh, _ := s.ns[a.proc].ShardOf(key.obj)
		v, _ := shard.Resolve(recs, sh, s.nodes)
		if s.dead[v.Owner] {
			continue // already reported as an orphan
		}
		st := s.ns[v.Owner].Store()
		ver, err := st.Version(key.obj)
		if err != nil || ver < key.version {
			s.violate("shard-lost-write", v.Owner,
				"obj %d acked at v%d by %d (epoch %d); owner %d holds v%d (err %v)",
				key.obj, key.version, a.proc, a.epoch, v.Owner, ver, err)
		}
	}
}

func (s *shardSim) run() *Report {
	for i := 0; i < s.steps; i++ {
		if retry := s.parked; len(retry) > 0 && s.rng.Intn(2) == 0 {
			s.parked = nil
			for _, p := range retry {
				s.issuePut(p)
			}
		}
		switch r := s.rng.Intn(10); {
		case r < 5:
			s.issuePut(s.newPut())
		case r < 7:
			s.startHandoff()
		default:
			for n := 1 + s.rng.Intn(3); n > 0; n-- {
				s.deliverOne()
			}
		}
		s.rep.Events++
		if i%8 == 7 {
			s.drain()
			s.checkQuiescent()
		}
	}
	s.drain()
	s.checkQuiescent()
	return s.rep
}
