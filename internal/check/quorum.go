// Quorum invariants for the ABD engine (internal/quorum): a deterministic,
// single-threaded simulator drives reads and writes over a 2f+1 replica
// group under seeded crash schedules — replicas killed before an op,
// mid-phase-1, or mid-phase-2 (both before and after the commit point), and
// revived through quorum catch-up reads — and checks after every committed
// operation that
//
//   - no two majorities disagree on a committed (object, version): a
//     committed read never returns a value older than an earlier committed
//     one, and a committed write always supersedes the highest committed
//     version ("quorum-regress");
//   - replicas agreeing on a (version, writer) timestamp agree on the
//     bytes, and nothing ever contradicts a committed timestamp
//     ("quorum-divergence");
//   - enough live replicas hold the committed value that every possible
//     majority intersects them ("quorum-coverage");
//   - a revived replica's caught-up state is version-dominated by some
//     quorum, i.e. at least the committed value ("quorum-catchup").
//
// The simulator plugs into Explore via QuorumRunner, so violations shrink
// to printed repros exactly like the protocol schedules.
package check

import (
	"bytes"
	"fmt"
	"math/rand"

	"sdso/internal/quorum"
	"sdso/internal/store"
)

// quorumObjects is the register set the simulator exercises; a handful is
// enough to interleave independent op streams.
const quorumObjects = 3

// QuorumRunner returns an Explore Runner that drives the ABD engine with
// replication factor f (group size 2f+1) through one seeded schedule per
// Scenario. Scenario.Ticks is the operation count, Scenario.Teams the
// client count, and Scenario.Faults arms the crash schedule (up to f
// replicas down at any moment, including kills mid-phase-2).
func QuorumRunner(f int) Runner {
	n := 2*f + 1
	return quorumRunner(f, quorum.Majority(n))
}

// quorumRunner exists so tests can inject a wrong quorum size and prove the
// invariants catch it.
func quorumRunner(f, majority int) Runner {
	return func(sc Scenario) (*Report, error) {
		if f < 1 {
			return nil, fmt.Errorf("check: quorum f must be >= 1, got %d", f)
		}
		sim := newQuorumSim(f, majority, sc)
		return sim.run(), nil
	}
}

type timestampKey struct {
	obj     store.ID
	version int64
	writer  int
}

type quorumSim struct {
	f        int
	majority int
	members  []int
	replicas map[int]*quorum.Replica
	dead     map[int]bool
	clients  int
	retired  map[int]bool
	rng      *rand.Rand
	faults   bool
	ops      int

	// committed[obj] is the highest committed value; committedData pins the
	// bytes of every committed (obj, version, writer) timestamp.
	committed     map[store.ID]quorum.Value
	committedData map[timestampKey][]byte

	rep *Report
}

func newQuorumSim(f, majority int, sc Scenario) *quorumSim {
	n := 2*f + 1
	s := &quorumSim{
		f:             f,
		majority:      majority,
		members:       quorum.Group(0, n, f),
		replicas:      make(map[int]*quorum.Replica, n),
		dead:          make(map[int]bool),
		clients:       sc.Teams,
		retired:       make(map[int]bool),
		rng:           rand.New(rand.NewSource(sc.Seed)),
		faults:        sc.Faults,
		ops:           sc.Ticks,
		committed:     make(map[store.ID]quorum.Value),
		committedData: make(map[timestampKey][]byte),
		rep:           &Report{},
	}
	if s.clients < 1 {
		s.clients = 1
	}
	for _, m := range s.members {
		s.replicas[m] = quorum.NewReplica()
	}
	return s
}

func (s *quorumSim) violate(class string, proc int, format string, args ...any) {
	s.rep.Violations = append(s.rep.Violations, Violation{
		Class:  class,
		Proc:   proc,
		Detail: fmt.Sprintf(format, args...),
	})
}

func (s *quorumSim) live() []int {
	var out []int
	for _, m := range s.members {
		if !s.dead[m] {
			out = append(out, m)
		}
	}
	return out
}

func (s *quorumSim) deadCount() int {
	c := 0
	for _, m := range s.members {
		if s.dead[m] {
			c++
		}
	}
	return c
}

// shuffledLive returns the live members in a seeded random order: the
// delivery schedule for one phase.
func (s *quorumSim) shuffledLive() []int {
	out := s.live()
	s.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// maybeCrash kills one live replica (never dropping below the f-crash
// budget) and reports whether it did.
func (s *quorumSim) maybeCrash() bool {
	if !s.faults || s.deadCount() >= s.f {
		return false
	}
	live := s.live()
	victim := live[s.rng.Intn(len(live))]
	s.dead[victim] = true
	s.replicas[victim] = nil // fail-stop: state dies with the process
	return true
}

// maybeRevive restarts one dead replica through quorum catch-up reads: a
// fresh, empty replica reads every object through the engine and installs
// the results before serving again. The caught-up state must be
// version-dominated by some quorum — concretely, at least the committed
// value per object.
func (s *quorumSim) maybeRevive() {
	if !s.faults || s.deadCount() == 0 || s.rng.Intn(4) != 0 {
		return
	}
	var deadList []int
	for _, m := range s.members {
		if s.dead[m] {
			deadList = append(deadList, m)
		}
	}
	reborn := deadList[s.rng.Intn(len(deadList))]
	fresh := quorum.NewReplica()
	for obj := store.ID(0); obj < quorumObjects; obj++ {
		v, ok := s.runOp(quorum.NewRead(obj, s.members, s.majority), -1, crashNone)
		if !ok {
			return // catch-up starved of a quorum; stay dead
		}
		fresh.Apply(obj, v)
		if want, committed := s.committed[obj]; committed {
			if got, _ := fresh.Read(obj); got.Less(want) {
				s.violate("quorum-catchup", reborn,
					"revived replica %d caught up obj %d to (v%d,w%d), below committed (v%d,w%d)",
					reborn, obj, got.Version, got.Writer, want.Version, want.Writer)
			}
		}
	}
	s.dead[reborn] = false
	s.replicas[reborn] = fresh
}

// Crash points within one operation.
const (
	crashNone = iota
	crashBeforeOp
	crashMidPhase1
	crashMidPhase2  // kill a replica after a partial set of phase-2 acks
	crashPostCommit // kill a replica that acked, right after the commit
	crashClient     // abandon the op mid-phase-2; the client retires
	crashPoints
)

// runOp drives one op to completion against the live replicas under a
// seeded delivery order, injecting the given crash point. ok is false when
// the op was abandoned (client crash) or starved of a quorum.
func (s *quorumSim) runOp(op *quorum.Op, client, crashAt int) (quorum.Value, bool) {
	if crashAt == crashBeforeOp {
		s.maybeCrash()
	}
	var wb quorum.Value
	var targets []int
	started := false
	p1 := s.shuffledLive()
	for i, m := range p1 {
		if crashAt == crashMidPhase1 && i == 1 {
			s.maybeCrash()
		}
		if s.dead[m] {
			continue
		}
		v, _ := s.replicas[m].Read(op.Obj())
		if w, ts, ok := op.OnVersion(m, v); ok {
			wb, targets, started = w, ts, true
			break
		}
	}
	if !started {
		return quorum.Value{}, false
	}
	// Phase 2: deliver the write-back in a fresh seeded order. Replicas
	// apply before acking; a replica killed "mid-phase-2" may have applied
	// without its ack arriving, or acked and then died.
	s.rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	acked := 0
	committed := false
	for _, m := range targets {
		if s.dead[m] {
			continue
		}
		s.replicas[m].Apply(op.Obj(), wb)
		if crashAt == crashMidPhase2 && acked == 1 && !committed {
			// The apply landed but the ack is lost with the process.
			if s.deadCount() < s.f {
				s.dead[m] = true
				s.replicas[m] = nil
				continue
			}
		}
		if crashAt == crashClient && acked == 1 && !committed {
			return quorum.Value{}, false // client dies with a partial write
		}
		acked++
		if op.OnAck(m) {
			committed = true
			if crashAt == crashPostCommit {
				s.maybeCrash()
			}
			break
		}
	}
	if !committed {
		return quorum.Value{}, false
	}
	return op.Result(), true
}

// checkCommit applies the quorum invariants after a committed op.
func (s *quorumSim) checkCommit(client int, op *quorum.Op, result quorum.Value) {
	obj := op.Obj()
	prev, has := s.committed[obj]
	if has {
		switch op.Kind() {
		case quorum.OpWrite:
			if result.Version <= prev.Version {
				s.violate("quorum-regress", client,
					"committed write of obj %d at v%d does not supersede committed v%d",
					obj, result.Version, prev.Version)
			}
		default:
			if result.Less(prev) {
				s.violate("quorum-regress", client,
					"committed read of obj %d returned (v%d,w%d), older than committed (v%d,w%d)",
					obj, result.Version, result.Writer, prev.Version, prev.Writer)
			}
		}
	}
	key := timestampKey{obj: obj, version: result.Version, writer: result.Writer}
	if want, ok := s.committedData[key]; ok {
		if !bytes.Equal(want, result.Data) {
			s.violate("quorum-divergence", client,
				"obj %d (v%d,w%d) committed twice with different bytes", obj, result.Version, result.Writer)
		}
	} else {
		s.committedData[key] = append([]byte(nil), result.Data...)
	}
	if !has || prev.Less(result) {
		s.committed[obj] = result
	}

	// Coverage: enough live holders of >= the committed value that any
	// f+1-subset of the live members intersects them.
	holders := 0
	liveCount := 0
	for _, m := range s.members {
		if s.dead[m] {
			continue
		}
		liveCount++
		if v, _ := s.replicas[m].Read(obj); !v.Less(s.committed[obj]) {
			holders++
		}
	}
	if holders < liveCount-s.f {
		s.violate("quorum-coverage", client,
			"obj %d committed (v%d,w%d) held by %d of %d live replicas; a majority could miss it",
			obj, s.committed[obj].Version, s.committed[obj].Writer, holders, liveCount)
	}

	// Divergence: replicas that agree on a timestamp must agree on bytes,
	// and no replica may contradict a committed timestamp.
	seen := make(map[timestampKey][]byte)
	for _, m := range s.members {
		if s.dead[m] {
			continue
		}
		v, ok := s.replicas[m].Read(obj)
		if !ok {
			continue
		}
		k := timestampKey{obj: obj, version: v.Version, writer: v.Writer}
		if want, dup := seen[k]; dup && !bytes.Equal(want, v.Data) {
			s.violate("quorum-divergence", m,
				"replicas disagree on obj %d (v%d,w%d)", obj, v.Version, v.Writer)
		}
		seen[k] = v.Data
		if want, committed := s.committedData[k]; committed && !bytes.Equal(want, v.Data) {
			s.violate("quorum-divergence", m,
				"replica %d contradicts committed obj %d (v%d,w%d)", m, obj, v.Version, v.Writer)
		}
	}
}

func (s *quorumSim) run() *Report {
	for i := 0; i < s.ops; i++ {
		s.maybeRevive()
		client := i % s.clients
		if s.retired[client] {
			continue
		}
		obj := store.ID(s.rng.Intn(quorumObjects))
		crashAt := crashNone
		if s.faults {
			crashAt = s.rng.Intn(crashPoints)
			if crashAt == crashClient && len(s.retired) >= s.clients-1 {
				// Out of client-crash budget: a fail-stop client never
				// issues again, so letting this one "survive" its crash
				// would reuse its (version, writer) timestamps.
				crashAt = crashNone
			}
		}
		var op *quorum.Op
		if s.rng.Intn(5) < 3 {
			payload := []byte(fmt.Sprintf("op%d-c%d", i, client))
			op = quorum.NewWrite(obj, s.members, s.majority, payload, client)
		} else {
			op = quorum.NewRead(obj, s.members, s.majority)
		}
		result, ok := s.runOp(op, client, crashAt)
		s.rep.Events++
		if !ok {
			if crashAt == crashClient {
				// A fail-stop client never issues again, so its
				// (version, writer) timestamps are never reused.
				s.retired[client] = true
			}
			continue
		}
		s.checkCommit(client, op, result)
	}
	return s.rep
}
