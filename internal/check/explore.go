// The schedule explorer: drives a runner over many seeded delivery orders
// (each seed perturbs message delivery through vtime.Jitter, and optionally
// layers a faultnet drop/delay plan on top) and, on failure, greedily
// shrinks the scenario to the smallest still-failing one so the report ends
// with a single reproducible command line.
package check

import (
	"fmt"
	"strings"
)

// Scenario is one point in the explored schedule space. The runner maps it
// to a full simulated game; everything it does must derive deterministically
// from these fields.
type Scenario struct {
	// Seed drives the delivery-order jitter (and the fault plan, when
	// Faults is set).
	Seed int64
	// Ticks bounds the game length.
	Ticks int
	// Teams is the number of players.
	Teams int
	// Faults layers the ambient drop/delay plan over the jittered links.
	Faults bool
}

func (s Scenario) String() string {
	f := ""
	if s.Faults {
		f = " faults"
	}
	return fmt.Sprintf("seed=%d ticks=%d teams=%d%s", s.Seed, s.Ticks, s.Teams, f)
}

// Runner executes one scenario and returns the oracle's verdict. A non-nil
// error (a simulation that failed to complete) counts as a failure for
// exploration purposes.
type Runner func(Scenario) (*Report, error)

// ExploreConfig parameterizes one exploration sweep.
type ExploreConfig struct {
	// Schedules is the number of seeds to explore.
	Schedules int
	// BaseSeed is the first seed; scenario i runs seed BaseSeed+i.
	BaseSeed int64
	// Ticks and Teams shape every scenario.
	Ticks, Teams int
	// FaultEvery enables the fault plan on every FaultEvery-th scenario
	// (0 disables fault scenarios entirely).
	FaultEvery int
	// ShrinkBudget bounds the number of extra runs spent shrinking a
	// failure; zero means 12.
	ShrinkBudget int
}

// Failure is one failing scenario, after shrinking.
type Failure struct {
	// Scenario is the original failing point.
	Scenario Scenario
	// Shrunk is the smallest still-failing scenario found.
	Shrunk Scenario
	// Report is the oracle verdict at the shrunk scenario (nil when the
	// failure was a run error).
	Report *Report
	// Err is the run error at the shrunk scenario, if any.
	Err error
}

func (f Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario {%s} failed", f.Scenario)
	if f.Shrunk != f.Scenario {
		fmt.Fprintf(&b, "; shrunk to {%s}", f.Shrunk)
	}
	switch {
	case f.Err != nil:
		fmt.Fprintf(&b, ": %v", f.Err)
	case f.Report != nil:
		fmt.Fprintf(&b, ": %s", f.Report)
	}
	return b.String()
}

// ExploreResult summarizes one sweep.
type ExploreResult struct {
	// Explored is the number of scenarios run (shrink reruns excluded).
	Explored int
	// FaultRuns is how many of those carried a fault plan.
	FaultRuns int
	// Events is the total events analyzed across clean scenarios.
	Events int
	// Failures holds every failing scenario, shrunk.
	Failures []Failure
}

// Ok reports whether the whole sweep passed.
func (r *ExploreResult) Ok() bool { return len(r.Failures) == 0 }

// Explore sweeps the schedule space and shrinks any failures.
func Explore(cfg ExploreConfig, run Runner) *ExploreResult {
	if cfg.ShrinkBudget <= 0 {
		cfg.ShrinkBudget = 12
	}
	res := &ExploreResult{}
	for i := 0; i < cfg.Schedules; i++ {
		sc := Scenario{
			Seed:  cfg.BaseSeed + int64(i),
			Ticks: cfg.Ticks,
			Teams: cfg.Teams,
			Faults: cfg.FaultEvery > 0 &&
				i%cfg.FaultEvery == cfg.FaultEvery-1,
		}
		res.Explored++
		if sc.Faults {
			res.FaultRuns++
		}
		rep, err := run(sc)
		if err == nil && rep.Ok() {
			res.Events += rep.Events
			continue
		}
		shrunk, srep, serr := shrink(sc, rep, err, run, cfg.ShrinkBudget)
		res.Failures = append(res.Failures, Failure{
			Scenario: sc, Shrunk: shrunk, Report: srep, Err: serr,
		})
	}
	return res
}

// shrink greedily minimizes a failing scenario: first try dropping the
// fault plan (a failure that survives without faults is a stronger
// counterexample), then halve the tick budget while the failure persists.
// Every candidate that stops failing is discarded and shrinking resumes
// from the last failing scenario, within budget.
func shrink(sc Scenario, rep *Report, err error, run Runner, budget int) (Scenario, *Report, error) {
	failing := func(r *Report, e error) bool { return e != nil || !r.Ok() }
	best, bestRep, bestErr := sc, rep, err
	if best.Faults && budget > 0 {
		cand := best
		cand.Faults = false
		r, e := run(cand)
		budget--
		if failing(r, e) {
			best, bestRep, bestErr = cand, r, e
		}
	}
	for budget > 0 && best.Ticks > 4 {
		cand := best
		cand.Ticks = best.Ticks / 2
		if cand.Ticks < 4 {
			cand.Ticks = 4
		}
		r, e := run(cand)
		budget--
		if !failing(r, e) {
			break
		}
		best, bestRep, bestErr = cand, r, e
	}
	return best, bestRep, bestErr
}
