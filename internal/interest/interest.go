// Package interest maintains per-player interest sets over a
// grid-bucketed spatial index of the world.
//
// The paper's spatial constraint says a player only needs updates for
// objects within its sensing radius d. This package turns that bound
// into an exchange-fanout filter: every peer's last advertised tank
// positions are bucketed into grid cells of side d, and each tick the
// player refreshes its interest set by querying only the cells its own
// tanks can reach — O(neighbors) work instead of O(n) pairwise
// distance tests.
//
// Membership is hysteretic: a peer enters the set when it comes within
// d + EnterSlack and leaves only once it is farther than d + ExitSlack
// (ExitSlack > EnterSlack), so sets churn on region crossings rather
// than every step. Both thresholds are widened by the staleness of the
// peer's advertised positions times MaxSpeed, bounding how far the peer
// may have drifted since its last beacon. Peers with no observation yet
// are unconditionally interesting — safety degrades to full fanout, not
// to silence.
package interest

import (
	"sort"

	"sdso/internal/game"
)

// Config parameterizes an Index. Radius is the sensing radius d
// (required, > 0); the rest default sensibly from it.
type Config struct {
	// Width and Height bound the world; positions outside are clamped
	// into range when bucketed.
	Width, Height int
	// Radius is the sensing radius d in blocks (Manhattan metric, like
	// the s-function machinery).
	Radius int
	// EnterSlack widens the radius at which a peer becomes interesting.
	// Defaults to 2.
	EnterSlack int
	// ExitSlack widens the radius below which a peer must come back to
	// stay interesting once it is in the set. Must exceed EnterSlack for
	// hysteresis; defaults to EnterSlack + 4.
	ExitSlack int
	// MaxSpeed bounds how many blocks any tank moves per tick; it scales
	// the staleness drift allowance. Defaults to 1.
	MaxSpeed int
}

func (c Config) withDefaults() Config {
	if c.Radius <= 0 {
		c.Radius = 1
	}
	if c.EnterSlack <= 0 {
		c.EnterSlack = 2
	}
	if c.ExitSlack <= c.EnterSlack {
		c.ExitSlack = c.EnterSlack + 4
	}
	if c.MaxSpeed <= 0 {
		c.MaxSpeed = 1
	}
	return c
}

type cell struct{ cx, cy int }

// obs is the last advertised state of one peer.
type obs struct {
	tanks []game.Pos
	tick  int64
	cells []cell
}

// Index maintains one player's interest set over the advertised
// positions of its peers. It is not safe for concurrent use; each
// player owns one.
type Index struct {
	cfg  Config
	side int // grid cell side = max(Radius, 1)

	peers   map[int]*obs
	buckets map[cell][]int
	members map[int]bool
	blind   map[int]bool // observed never or with unknown positions
}

// New returns an empty index.
func New(cfg Config) *Index {
	cfg = cfg.withDefaults()
	side := cfg.Radius
	if side < 1 {
		side = 1
	}
	return &Index{
		cfg:     cfg,
		side:    side,
		peers:   make(map[int]*obs),
		buckets: make(map[cell][]int),
		members: make(map[int]bool),
		blind:   make(map[int]bool),
	}
}

func (ix *Index) cellOf(p game.Pos) cell {
	x, y := p.X, p.Y
	if x < 0 {
		x = 0
	}
	if ix.cfg.Width > 0 && x >= ix.cfg.Width {
		x = ix.cfg.Width - 1
	}
	if y < 0 {
		y = 0
	}
	if ix.cfg.Height > 0 && y >= ix.cfg.Height {
		y = ix.cfg.Height - 1
	}
	return cell{x / ix.side, y / ix.side}
}

func (ix *Index) unbucket(peer int, o *obs) {
	for _, c := range o.cells {
		ids := ix.buckets[c]
		for i, id := range ids {
			if id == peer {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				break
			}
		}
		if len(ids) == 0 {
			delete(ix.buckets, c)
		} else {
			ix.buckets[c] = ids
		}
	}
	o.cells = o.cells[:0]
}

// Observe records peer's tank positions as advertised at tick. An empty
// position list marks the peer blind (unconditionally interesting):
// a peer whose whereabouts are unknown must keep receiving updates.
func (ix *Index) Observe(peer int, tanks []game.Pos, tick int64) {
	o := ix.peers[peer]
	if o == nil {
		o = &obs{}
		ix.peers[peer] = o
	} else {
		ix.unbucket(peer, o)
	}
	o.tanks = append(o.tanks[:0], tanks...)
	o.tick = tick
	if len(tanks) == 0 {
		ix.blind[peer] = true
		return
	}
	delete(ix.blind, peer)
	seen := make(map[cell]bool, len(tanks))
	for _, p := range tanks {
		c := ix.cellOf(p)
		if seen[c] {
			continue
		}
		seen[c] = true
		o.cells = append(o.cells, c)
		ix.buckets[c] = append(ix.buckets[c], peer)
	}
}

// Forget drops everything known about peer: it becomes blind, i.e.
// unconditionally interesting, until the next Observe. Use it when a
// peer joins or rejoins with unknown state.
func (ix *Index) Forget(peer int) {
	if o := ix.peers[peer]; o != nil {
		ix.unbucket(peer, o)
		delete(ix.peers, peer)
	}
	ix.blind[peer] = true
}

// Drop removes peer entirely (evicted or departed): not a member, not
// blind, never returned again.
func (ix *Index) Drop(peer int) {
	if o := ix.peers[peer]; o != nil {
		ix.unbucket(peer, o)
		delete(ix.peers, peer)
	}
	delete(ix.blind, peer)
	delete(ix.members, peer)
}

// Contains reports whether peer is currently interesting: in the
// hysteretic member set or blind.
func (ix *Index) Contains(peer int) bool {
	return ix.members[peer] || ix.blind[peer]
}

// Size returns the number of currently interesting peers.
func (ix *Index) Size() int {
	n := len(ix.members)
	for p := range ix.blind {
		if !ix.members[p] {
			n++
		}
	}
	return n
}

// dist returns the minimum Manhattan distance between self's tanks and
// o's advertised tanks.
func dist(self []game.Pos, o *obs) int {
	best := int(^uint(0) >> 1)
	for _, a := range self {
		for _, b := range o.tanks {
			if d := a.Manhattan(b); d < best {
				best = d
			}
		}
	}
	return best
}

// drift bounds how far o's tanks may have moved since their beacon.
func (ix *Index) drift(o *obs, now int64) int {
	age := now - o.tick
	if age < 0 {
		age = 0
	}
	return int(age) * ix.cfg.MaxSpeed
}

// Refresh recomputes the interest set for a player whose own tanks sit
// at self, as of tick now. It returns the peers that entered and left
// the set this refresh. Blind peers are not members (they are covered
// by Contains separately) and never appear in either list.
func (ix *Index) Refresh(self []game.Pos, now int64) (entered, left []int) {
	// Exit pass: existing members leave once provably farther than
	// Radius + ExitSlack + drift.
	for peer := range ix.members {
		o := ix.peers[peer]
		if o == nil || len(o.tanks) == 0 {
			// Became blind or unknown; membership is moot.
			delete(ix.members, peer)
			continue
		}
		if len(self) == 0 {
			continue
		}
		if dist(self, o) > ix.cfg.Radius+ix.cfg.ExitSlack+ix.drift(o, now) {
			delete(ix.members, peer)
			left = append(left, peer)
		}
	}
	if len(self) == 0 {
		return entered, left
	}
	// Enter pass: query the grid for candidate peers within
	// Radius + EnterSlack + maxDrift of any of our tanks, then confirm
	// with the exact per-peer drift-widened distance test. maxDrift uses
	// the stalest bucketed observation so the cell sweep over-approximates
	// every peer's own allowance.
	maxDrift := 0
	for peer, o := range ix.peers {
		if ix.blind[peer] || len(o.tanks) == 0 {
			continue
		}
		if d := ix.drift(o, now); d > maxDrift {
			maxDrift = d
		}
	}
	reach := ix.cfg.Radius + ix.cfg.EnterSlack + maxDrift
	span := (reach + ix.side - 1) / ix.side // cells per axis, each side
	seen := make(map[int]bool)
	for _, p := range self {
		c := ix.cellOf(p)
		for dx := -span; dx <= span; dx++ {
			for dy := -span; dy <= span; dy++ {
				for _, peer := range ix.buckets[cell{c.cx + dx, c.cy + dy}] {
					if seen[peer] || ix.members[peer] {
						continue
					}
					seen[peer] = true
					o := ix.peers[peer]
					if dist(self, o) <= ix.cfg.Radius+ix.cfg.EnterSlack+ix.drift(o, now) {
						ix.members[peer] = true
						entered = append(entered, peer)
					}
				}
			}
		}
	}
	// Callers act on these lists (enter-radius fetches) in order; sort so
	// the map iteration above never leaks nondeterminism downstream.
	sort.Ints(entered)
	sort.Ints(left)
	return entered, left
}
