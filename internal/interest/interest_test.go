package interest

import (
	"math/rand"
	"testing"

	"sdso/internal/game"
)

func TestBlindPeerAlwaysInteresting(t *testing.T) {
	ix := New(Config{Width: 32, Height: 24, Radius: 2})
	ix.Forget(7)
	if !ix.Contains(7) {
		t.Fatal("forgotten peer must be interesting")
	}
	if ix.Size() != 1 {
		t.Fatalf("Size = %d, want 1", ix.Size())
	}
	ix.Observe(7, []game.Pos{{X: 30, Y: 20}}, 1)
	ix.Refresh([]game.Pos{{X: 0, Y: 0}}, 1)
	if ix.Contains(7) {
		t.Fatal("far observed peer must not be interesting")
	}
	ix.Drop(7)
	if ix.Contains(7) {
		t.Fatal("dropped peer must not be interesting")
	}
}

func TestEmptyObserveMarksBlind(t *testing.T) {
	ix := New(Config{Width: 32, Height: 24, Radius: 2})
	ix.Observe(3, nil, 1)
	if !ix.Contains(3) {
		t.Fatal("peer with unknown positions must be interesting")
	}
	ix.Observe(3, []game.Pos{{X: 1, Y: 1}}, 2)
	ix.Refresh([]game.Pos{{X: 0, Y: 0}}, 2)
	if !ix.Contains(3) {
		t.Fatal("adjacent peer must be interesting")
	}
}

func TestHysteresis(t *testing.T) {
	ix := New(Config{Width: 64, Height: 64, Radius: 2, EnterSlack: 1, ExitSlack: 4})
	self := []game.Pos{{X: 10, Y: 10}}
	// Enter threshold is Radius+EnterSlack+drift = 2+1+0 = 3 at age 0.
	ix.Observe(1, []game.Pos{{X: 14, Y: 10}}, 5) // dist 4 > 3: out
	entered, _ := ix.Refresh(self, 5)
	if len(entered) != 0 || ix.Contains(1) {
		t.Fatalf("peer at dist 4 entered (entered=%v)", entered)
	}
	ix.Observe(1, []game.Pos{{X: 13, Y: 10}}, 6) // dist 3 <= 3: in
	entered, _ = ix.Refresh(self, 6)
	if len(entered) != 1 || !ix.Contains(1) {
		t.Fatalf("peer at dist 3 did not enter (entered=%v)", entered)
	}
	// Exit threshold is Radius+ExitSlack+drift = 2+4+0 = 6: dist 5 stays.
	ix.Observe(1, []game.Pos{{X: 15, Y: 10}}, 7)
	_, left := ix.Refresh(self, 7)
	if len(left) != 0 || !ix.Contains(1) {
		t.Fatalf("peer at dist 5 left inside hysteresis band (left=%v)", left)
	}
	// dist 7 > 6: leaves.
	ix.Observe(1, []game.Pos{{X: 17, Y: 10}}, 8)
	_, left = ix.Refresh(self, 8)
	if len(left) != 1 || ix.Contains(1) {
		t.Fatalf("peer at dist 7 did not leave (left=%v)", left)
	}
}

func TestStalenessWidensThresholds(t *testing.T) {
	ix := New(Config{Width: 64, Height: 64, Radius: 2, EnterSlack: 1, ExitSlack: 4, MaxSpeed: 1})
	self := []game.Pos{{X: 10, Y: 10}}
	// dist 5 at age 2 → threshold 2+1+2 = 5: enters.
	ix.Observe(1, []game.Pos{{X: 15, Y: 10}}, 3)
	entered, _ := ix.Refresh(self, 5)
	if len(entered) != 1 {
		t.Fatalf("stale peer at dist 5 did not enter (entered=%v)", entered)
	}
}

// TestRefreshMatchesBruteForce drives random walks through the grid and
// checks membership against a direct hysteretic recomputation.
func TestRefreshMatchesBruteForce(t *testing.T) {
	const (
		w, h   = 48, 36
		nPeers = 24
		ticks  = 80
	)
	rng := rand.New(rand.NewSource(42))
	cfg := Config{Width: w, Height: h, Radius: 3, EnterSlack: 2, ExitSlack: 6, MaxSpeed: 1}
	ix := New(cfg)

	type ref struct {
		tanks []game.Pos
		tick  int64
	}
	peers := make(map[int]*ref)
	want := make(map[int]bool)
	step := func(p game.Pos) game.Pos {
		p.X += rng.Intn(3) - 1
		p.Y += rng.Intn(3) - 1
		if p.X < 0 {
			p.X = 0
		}
		if p.X >= w {
			p.X = w - 1
		}
		if p.Y < 0 {
			p.Y = 0
		}
		if p.Y >= h {
			p.Y = h - 1
		}
		return p
	}
	self := []game.Pos{{X: w / 2, Y: h / 2}, {X: w / 4, Y: h / 4}}
	for i := 0; i < nPeers; i++ {
		peers[i] = &ref{tanks: []game.Pos{{X: rng.Intn(w), Y: rng.Intn(h)}}}
		// Mirror real usage: every live peer starts blind until its
		// first beacon is observed.
		ix.Forget(i)
	}

	minDist := func(r *ref) int {
		best := 1 << 30
		for _, a := range self {
			for _, b := range r.tanks {
				if d := a.Manhattan(b); d < best {
					best = d
				}
			}
		}
		return best
	}

	for tick := int64(1); tick <= ticks; tick++ {
		for i := range self {
			self[i] = step(self[i])
		}
		for id, r := range peers {
			// Peers beacon sporadically, so observations go stale.
			if rng.Intn(3) == 0 {
				for j := range r.tanks {
					r.tanks[j] = step(r.tanks[j])
				}
				r.tick = tick
				ix.Observe(id, r.tanks, tick)
			}
		}
		ix.Refresh(self, tick)

		// Brute-force hysteretic recomputation.
		for id, r := range peers {
			if r.tick == 0 {
				continue // never observed: blind, checked below
			}
			drift := int(tick-r.tick) * cfg.MaxSpeed
			d := minDist(r)
			if want[id] {
				if d > cfg.Radius+cfg.ExitSlack+drift {
					want[id] = false
				}
			} else if d <= cfg.Radius+cfg.EnterSlack+drift {
				want[id] = true
			}
		}
		for id, r := range peers {
			got := ix.Contains(id)
			exp := want[id] || r.tick == 0
			if got != exp {
				t.Fatalf("tick %d peer %d: Contains=%v want %v (dist=%d)",
					tick, id, got, exp, minDist(r))
			}
		}
	}
}

func BenchmarkRefresh128(b *testing.B) {
	const w, h = 96, 64
	cfg := Config{Width: w, Height: h, Radius: 3}
	ix := New(cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 128; i++ {
		ix.Observe(i, []game.Pos{{X: rng.Intn(w), Y: rng.Intn(h)}}, 1)
	}
	self := []game.Pos{{X: w / 2, Y: h / 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Refresh(self, int64(i%8)+1)
	}
}
