package netmodel

import (
	"testing"
	"testing/quick"
	"time"

	"sdso/internal/vtime"
)

func testParams() Params {
	return Params{
		BandwidthBps: 10e6,
		Propagation:  time.Millisecond,
		SendCPU:      100 * time.Microsecond,
		RecvCPU:      100 * time.Microsecond,
		Loopback:     10 * time.Microsecond,
	}
}

func TestTxTime(t *testing.T) {
	c := NewCluster(testParams())
	// 2048 bytes at 10 Mbps = 16384 bits / 10e6 bps = 1.6384 ms.
	got := c.txTime(2048)
	want := 1638400 * time.Nanosecond
	if got != want {
		t.Errorf("txTime(2048) = %v, want %v", got, want)
	}
}

func TestDeliverySingleMessage(t *testing.T) {
	c := NewCluster(testParams())
	now := vtime.Time(0)
	got := c.Delivery(0, 1, 2048, now)
	// sendCPU + tx + prop + tx + recvCPU
	want := 100*time.Microsecond + 1638400 + 1*time.Millisecond + 1638400 + 100*time.Microsecond
	if got != want {
		t.Errorf("Delivery = %v, want %v", got, want)
	}
}

func TestUplinkSerializes(t *testing.T) {
	c := NewCluster(testParams())
	d1 := c.Delivery(0, 1, 2048, 0)
	d2 := c.Delivery(0, 2, 2048, 0)
	if d2 <= d1 {
		t.Errorf("second send on busy uplink delivered at %v, not after first %v", d2, d1)
	}
	// The second message waits one full tx time behind the first.
	if diff := d2 - d1; diff != c.txTime(2048) {
		t.Errorf("serialization gap = %v, want %v", diff, c.txTime(2048))
	}
}

func TestDownlinkSerializes(t *testing.T) {
	c := NewCluster(testParams())
	d1 := c.Delivery(1, 0, 2048, 0)
	d2 := c.Delivery(2, 0, 2048, 0)
	if d2 <= d1 {
		t.Errorf("concurrent receives did not serialize: %v then %v", d1, d2)
	}
}

func TestLoopback(t *testing.T) {
	p := testParams()
	p.HostOf = func(proc int) int { return proc % 2 } // procs 0,2 on host 0; 1,3 on host 1
	c := NewCluster(p)
	if got := c.Delivery(0, 2, 2048, 0); got != p.Loopback {
		t.Errorf("co-located delivery = %v, want %v", got, p.Loopback)
	}
	if got := c.Delivery(0, 1, 64, 0); got <= p.Loopback {
		t.Errorf("remote delivery = %v, want > loopback", got)
	}
}

func TestZeroBandwidth(t *testing.T) {
	p := testParams()
	p.BandwidthBps = 0
	c := NewCluster(p)
	got := c.Delivery(0, 1, 1<<20, 0)
	want := p.SendCPU + p.Propagation + p.RecvCPU
	if got != want {
		t.Errorf("Delivery with infinite bandwidth = %v, want %v", got, want)
	}
}

func TestDeliveryNeverBeforeSend(t *testing.T) {
	f := func(from, to uint8, size uint16, nowMs uint16) bool {
		c := NewCluster(testParams())
		now := vtime.Time(nowMs) * vtime.Time(time.Millisecond)
		return c.Delivery(int(from), int(to), int(size), now) >= now
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeliveryMonotonicPerLink(t *testing.T) {
	// Successive sends on the same link at non-decreasing times must be
	// delivered in order.
	f := func(sizes []uint16) bool {
		c := NewCluster(testParams())
		last := vtime.Time(-1)
		now := vtime.Time(0)
		for _, sz := range sizes {
			d := c.Delivery(0, 1, int(sz)+1, now)
			if d <= last {
				return false
			}
			last = d
			now += vtime.Time(10 * time.Microsecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEthernet10MbpsDefaults(t *testing.T) {
	p := Ethernet10Mbps()
	if p.BandwidthBps != 10e6 {
		t.Errorf("BandwidthBps = %v, want 10e6", p.BandwidthBps)
	}
	if p.Propagation <= 0 || p.SendCPU <= 0 || p.RecvCPU <= 0 || p.Loopback <= 0 {
		t.Errorf("defaults must be positive: %+v", p)
	}
	if p.Loopback >= p.Propagation {
		t.Errorf("loopback (%v) should be cheaper than remote propagation (%v)", p.Loopback, p.Propagation)
	}
}

func TestClusterInVtimeSim(t *testing.T) {
	// End-to-end: a broadcast from one proc to 4 peers arrives serialized.
	c := NewCluster(testParams())
	s := vtime.NewSim(vtime.Config{Links: c})
	arrivals := make([]vtime.Time, 4)
	s.Spawn(func(p *vtime.Proc) {
		for i := 1; i <= 4; i++ {
			p.Send(i, "x", 2048)
		}
	})
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn(func(p *vtime.Proc) {
			m, ok := p.Recv()
			if !ok {
				t.Error("recv failed")
				return
			}
			arrivals[i] = m.Delivered
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < 4; i++ {
		if arrivals[i] <= arrivals[i-1] {
			t.Errorf("broadcast arrivals not serialized: %v", arrivals)
		}
	}
}

func TestDeliveryDeterminism(t *testing.T) {
	run := func() []vtime.Time {
		c := NewCluster(testParams())
		var out []vtime.Time
		for i := 0; i < 10; i++ {
			out = append(out, c.Delivery(i%3, (i+1)%3, 512*(i+1), vtime.Time(i)*vtime.Time(time.Millisecond)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic delivery at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJitterPreservesPairFIFO(t *testing.T) {
	p := testParams()
	p.Jitter = 5 * time.Millisecond
	p.JitterSeed = 7
	c := NewCluster(p)
	last := vtime.Time(-1)
	now := vtime.Time(0)
	for i := 0; i < 200; i++ {
		d := c.Delivery(0, 1, 256, now)
		if d <= last {
			t.Fatalf("pair FIFO violated at %d: %v after %v", i, d, last)
		}
		last = d
		now += vtime.Time(50 * time.Microsecond)
	}
}

func TestJitterDeterministicAndReordering(t *testing.T) {
	p := testParams()
	p.Jitter = 10 * time.Millisecond
	p.JitterSeed = 3
	run := func() []vtime.Time {
		c := NewCluster(p)
		var out []vtime.Time
		for i := 0; i < 50; i++ {
			out = append(out, c.Delivery(i%4, 5, 256, vtime.Time(i)*vtime.Time(100*time.Microsecond)))
		}
		return out
	}
	a, b := run(), run()
	reordered := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic at %d", i)
		}
		if i > 0 && a[i] < a[i-1] {
			reordered = true // across different sender pairs: allowed and expected
		}
	}
	if !reordered {
		t.Error("10ms jitter produced no cross-pair reordering in 50 sends")
	}
}
