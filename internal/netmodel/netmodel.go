// Package netmodel provides link-cost models for the vtime simulator that
// approximate the paper's testbed: 16 SGI Indy workstations (MIPS R4400)
// connected by switched 10 Mbps Ethernet, talking TCP.
//
// The model is deliberately simple — the reproduction targets the *shape* of
// the paper's figures, which is driven by the relative cost of lock
// round-trips, broadcast fan-out, and multicast subsets, not by absolute
// host speed:
//
//   - Each host has an uplink and a downlink NIC that serialize
//     transmissions (store-and-forward through the switch). Sixteen peers
//     broadcasting 2 KB messages therefore congest a receiver's downlink,
//     which is what makes BSYNC's per-tick cost grow with n.
//   - Every message additionally pays fixed propagation (switch + protocol
//     stack) latency and per-message CPU costs at the sender and receiver.
//   - Messages between co-located processes (same host) skip the NICs and
//     pay only a small loopback cost. The entry-consistency baseline uses
//     this for lock managers that land on the requesting host (probability
//     1/n, as in the paper).
package netmodel

import (
	"math/rand"
	"time"

	"sdso/internal/vtime"
)

// Params describes a cluster network.
type Params struct {
	// BandwidthBps is the per-NIC bandwidth in bits per second.
	BandwidthBps float64
	// Propagation is the fixed one-way latency added to every remote
	// message (switch forwarding plus protocol-stack traversal).
	Propagation time.Duration
	// SendCPU and RecvCPU model per-message protocol processing on the
	// hosts. SendCPU delays when the message enters the sender NIC;
	// RecvCPU is added after the downlink delivers it.
	SendCPU time.Duration
	RecvCPU time.Duration
	// Loopback is the total delay for a message between co-located
	// processes (same host), replacing all of the above.
	Loopback time.Duration
	// HostOf maps a vtime process ID to a host ID. Nil means every
	// process is its own host.
	HostOf func(proc int) int
	// Jitter adds a deterministic pseudo-random extra delay in
	// [0, Jitter) to every remote message (failure injection: it reorders
	// deliveries across sender pairs while per-pair FIFO order is
	// preserved). JitterSeed seeds the generator.
	Jitter     time.Duration
	JitterSeed int64
	// DropProb makes remote links lossy: each remote message is
	// independently lost with this probability (loopback messages are
	// never dropped). Losses are deterministic per DropSeed; messages
	// that do get delivered keep per-pair FIFO order.
	DropProb float64
	DropSeed int64
}

// Ethernet10Mbps returns parameters approximating the paper's testbed.
// A 2048-byte message takes ~1.64 ms of NIC time at 10 Mbps; 1996-era
// TCP/IP round trips on this class of hardware were on the order of a few
// milliseconds.
func Ethernet10Mbps() Params {
	return Params{
		BandwidthBps: 10e6,
		Propagation:  500 * time.Microsecond,
		SendCPU:      150 * time.Microsecond,
		RecvCPU:      150 * time.Microsecond,
		Loopback:     50 * time.Microsecond,
	}
}

// Cluster is a stateful vtime.LinkModel: it tracks per-host NIC busy times
// so concurrent transmissions serialize. It must only be used from a single
// simulation (vtime invokes it deterministically).
type Cluster struct {
	p        Params
	upFree   map[int]vtime.Time // host -> uplink free-at
	downFree map[int]vtime.Time // host -> downlink free-at

	jitterRNG *rand.Rand
	dropRNG   *rand.Rand
	pairLast  map[[2]int]vtime.Time // FIFO floor per (from, to) pair
}

var _ vtime.LinkModel = (*Cluster)(nil)

// NewCluster returns a Cluster link model with the given parameters.
func NewCluster(p Params) *Cluster {
	c := &Cluster{
		p:        p,
		upFree:   make(map[int]vtime.Time),
		downFree: make(map[int]vtime.Time),
	}
	if p.Jitter > 0 {
		c.jitterRNG = rand.New(rand.NewSource(p.JitterSeed))
		c.pairLast = make(map[[2]int]vtime.Time)
	}
	if p.DropProb > 0 {
		c.dropRNG = rand.New(rand.NewSource(p.DropSeed))
	}
	return c
}

func (c *Cluster) host(proc int) int {
	if c.p.HostOf == nil {
		return proc
	}
	return c.p.HostOf(proc)
}

// txTime is the NIC serialization time for size bytes.
func (c *Cluster) txTime(size int) vtime.Time {
	if c.p.BandwidthBps <= 0 {
		return 0
	}
	bits := float64(size) * 8
	return vtime.Time(bits / c.p.BandwidthBps * float64(time.Second))
}

// Delivery implements vtime.LinkModel.
func (c *Cluster) Delivery(from, to, size int, now vtime.Time) vtime.Time {
	src, dst := c.host(from), c.host(to)
	if src == dst {
		return now + c.p.Loopback
	}
	// Lossy links: the drop decision is drawn before any NIC accounting
	// (the message is lost at the sender), deterministically in the
	// simulator's send order. Delivered messages keep per-pair FIFO.
	if c.dropRNG != nil && c.dropRNG.Float64() < c.p.DropProb {
		return vtime.Dropped
	}
	tx := c.txTime(size)

	// Sender: CPU cost, then wait for the uplink, then transmit.
	start := now + c.p.SendCPU
	if f := c.upFree[src]; f > start {
		start = f
	}
	upDone := start + tx
	c.upFree[src] = upDone

	// Switch: store-and-forward plus propagation, then the receiver's
	// downlink serializes incoming traffic.
	arrive := upDone + c.p.Propagation
	if f := c.downFree[dst]; f > arrive {
		arrive = f
	}
	downDone := arrive + tx
	c.downFree[dst] = downDone

	delivery := downDone + c.p.RecvCPU
	if c.jitterRNG != nil {
		delivery += vtime.Time(c.jitterRNG.Int63n(int64(c.p.Jitter)))
		// The protocols assume per-pair FIFO (as TCP provides); jitter
		// may reorder across pairs but never within one.
		pair := [2]int{from, to}
		if last := c.pairLast[pair]; delivery <= last {
			delivery = last + 1
		}
		c.pairLast[pair] = delivery
	}
	return delivery
}
