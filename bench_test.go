package sdso

// Benchmarks regenerating the paper's evaluation (one per figure panel),
// plus ablations for the design choices DESIGN.md calls out and
// microbenchmarks of the hot substrates.
//
//	go test -bench=. -benchmem
//
// The figure benchmarks report the reproduced series through
// b.ReportMetric: for each protocol P and process count n, a metric
// "<P>_n<N>_<unit>". Absolute values are simulator-model outputs; the
// paper-comparison (who wins, crossovers) lives in EXPERIMENTS.md and is
// asserted by internal/harness's tests.

import (
	"fmt"
	"testing"
	"time"

	"sdso/internal/diff"
	"sdso/internal/game"
	"sdso/internal/harness"
	"sdso/internal/metrics"
	"sdso/internal/netmodel"
	"sdso/internal/protocol/lookahead"
	"sdso/internal/transport"
	"sdso/internal/vtime"
	"sdso/internal/wire"
	"sdso/internal/xlist"
)

// benchSweep runs one paper sweep per b.N iteration and reports the final
// iteration's series as metrics.
func benchSweep(b *testing.B, rng int, metric harness.Metric, unit string) {
	b.Helper()
	var sw *harness.Sweep
	for i := 0; i < b.N; i++ {
		var err error
		sw, err = harness.RunSweep(harness.SweepConfig{Range: rng, Seeds: []int64{1}})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range harness.PaperProtocols {
		for _, n := range harness.PaperNs {
			b.ReportMetric(sw.Value(p, n, metric), fmt.Sprintf("%s_n%d_%s", p, n, unit))
		}
	}
}

// BenchmarkFig5Range1 regenerates Figure 5 (left): normalized execution
// time, range 1.
func BenchmarkFig5Range1(b *testing.B) {
	benchSweep(b, 1, harness.MetricNormalizedTime, "ms/mod")
}

// BenchmarkFig5Range3 regenerates Figure 5 (right): normalized execution
// time, range 3.
func BenchmarkFig5Range3(b *testing.B) {
	benchSweep(b, 3, harness.MetricNormalizedTime, "ms/mod")
}

// BenchmarkFig6Range1 regenerates Figure 6 (left): total messages, range 1.
func BenchmarkFig6Range1(b *testing.B) {
	benchSweep(b, 1, harness.MetricTotalMsgs, "msgs")
}

// BenchmarkFig6Range3 regenerates Figure 6 (right): total messages, range 3.
func BenchmarkFig6Range3(b *testing.B) {
	benchSweep(b, 3, harness.MetricTotalMsgs, "msgs")
}

// BenchmarkFig7Range1 regenerates Figure 7 (left): data messages, range 1.
func BenchmarkFig7Range1(b *testing.B) {
	benchSweep(b, 1, harness.MetricDataMsgs, "datamsgs")
}

// BenchmarkFig7Range3 regenerates Figure 7 (right): data messages, range 3.
func BenchmarkFig7Range3(b *testing.B) {
	benchSweep(b, 3, harness.MetricDataMsgs, "datamsgs")
}

// BenchmarkFig8 regenerates Figure 8: protocol overhead percentages
// (range 1).
func BenchmarkFig8(b *testing.B) {
	benchSweep(b, 1, harness.MetricOverheadPct, "ovh_pct")
}

// BenchmarkAblationDiffMerge measures the slotted buffer's diff-merging
// optimization (paper §3.1): bytes shipped with and without merging for an
// identical MSYNC2 game.
func BenchmarkAblationDiffMerge(b *testing.B) {
	run := func(merge bool) float64 {
		g := game.DefaultConfig(8, 1)
		g.MaxTicks = 150
		g.EndOnFirstGoal = true
		res, err := harness.Run(harness.Config{Game: g, Protocol: harness.MSYNC2, MergeDiffs: &merge})
		if err != nil {
			b.Fatal(err)
		}
		bytes := 0
		for _, s := range res.Metrics.Procs {
			bytes += s.BytesSent
		}
		return float64(bytes)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with, "bytes_merged")
	b.ReportMetric(without, "bytes_unmerged")
	if without > 0 {
		b.ReportMetric(with/without*100, "merged_pct_of_unmerged")
	}
}

// BenchmarkAblationSpatialFilter isolates the value of s-function precision
// (the only difference between the three lookahead protocols): data
// messages at 16 processes under each filter.
func BenchmarkAblationSpatialFilter(b *testing.B) {
	var vals [3]float64
	protos := []harness.Protocol{harness.BSYNC, harness.MSYNC, harness.MSYNC2}
	for i := 0; i < b.N; i++ {
		for k, p := range protos {
			g := game.DefaultConfig(16, 1)
			g.MaxTicks = 150
			g.EndOnFirstGoal = true
			res, err := harness.Run(harness.Config{Game: g, Protocol: p})
			if err != nil {
				b.Fatal(err)
			}
			vals[k] = float64(res.Metrics.DataMsgs())
		}
	}
	for k, p := range protos {
		b.ReportMetric(vals[k], fmt.Sprintf("%s_datamsgs", p))
	}
}

// BenchmarkExtensionLRC measures the §2.3 LRC-vs-EC comparison: bytes per
// application tick (LRC's write-notice boards versus EC's per-object
// grants).
func BenchmarkExtensionLRC(b *testing.B) {
	run := func(p harness.Protocol) float64 {
		g := game.DefaultConfig(8, 1)
		g.MaxTicks = 150
		g.EndOnFirstGoal = true
		res, err := harness.Run(harness.Config{Game: g, Protocol: p})
		if err != nil {
			b.Fatal(err)
		}
		bytes, ticks := 0, 0
		for _, s := range res.Metrics.Procs {
			bytes += s.BytesSent
			ticks += s.Ticks
		}
		if ticks == 0 {
			return 0
		}
		return float64(bytes) / float64(ticks)
	}
	var lrc, ec float64
	for i := 0; i < b.N; i++ {
		lrc = run(harness.LRC)
		ec = run(harness.EC)
	}
	b.ReportMetric(lrc, "LRC_bytes/tick")
	b.ReportMetric(ec, "EC_bytes/tick")
}

// BenchmarkExtensionCausal measures the §2.3 causal-memory comparison:
// bytes per tick versus BSYNC (vector timestamps versus scalar stamps).
func BenchmarkExtensionCausal(b *testing.B) {
	run := func(p harness.Protocol) float64 {
		g := game.DefaultConfig(16, 1)
		g.MaxTicks = 150
		g.EndOnFirstGoal = true
		res, err := harness.Run(harness.Config{Game: g, Protocol: p})
		if err != nil {
			b.Fatal(err)
		}
		bytes, ticks := 0, 0
		for _, s := range res.Metrics.Procs {
			bytes += s.BytesSent
			ticks += s.Ticks
		}
		if ticks == 0 {
			return 0
		}
		return float64(bytes) / float64(ticks)
	}
	var ca, bs float64
	for i := 0; i < b.N; i++ {
		ca = run(harness.Causal)
		bs = run(harness.BSYNC)
	}
	b.ReportMetric(ca, "CAUSAL_bytes/tick")
	b.ReportMetric(bs, "BSYNC_bytes/tick")
}

// --- Microbenchmarks of the substrates ---

// BenchmarkDiffComputeApply measures the diff engine on cell-sized objects.
func BenchmarkDiffComputeApply(b *testing.B) {
	old := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	new := []byte{5, 3, 0, 0, 0, 0, 0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := diff.Compute(old, new)
		if _, err := diff.Apply(old, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffMergeChain measures merging a chain of single-cell diffs.
func BenchmarkDiffMergeChain(b *testing.B) {
	states := make([][]byte, 16)
	for i := range states {
		states[i] = []byte{byte(i + 1), byte(i), 0, 0, 0, 0, 0, 0}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc := diff.Compute(states[0], states[1])
		for k := 2; k < len(states); k++ {
			next := diff.Compute(states[k-1], states[k])
			var err error
			acc, err = diff.Merge(acc, next)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireCodec measures message encode/decode round trips.
func BenchmarkWireCodec(b *testing.B) {
	m := &wire.Msg{
		Kind: wire.KindData, Src: 3, Dst: 7, Stamp: 42, Obj: 123,
		Ints: []int64{1, 2, 3}, Payload: make([]byte, 256),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out wire.Msg
		if err := out.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeList measures schedule maintenance at cluster scale.
func BenchmarkExchangeList(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := xlist.NewList()
		for p := 0; p < 16; p++ {
			l.Set(p, int64(p%5)+1)
		}
		for tick := int64(1); tick <= 50; tick++ {
			for _, e := range l.Due(tick) {
				l.Set(e.Proc, tick+int64(e.Proc%7)+1)
			}
		}
	}
}

// BenchmarkVtimePingPong measures the simulator's context-switch cost.
func BenchmarkVtimePingPong(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := vtime.NewSim(vtime.Config{Links: vtime.ConstantDelay(time.Microsecond)})
		sim.Spawn(func(p *vtime.Proc) {
			for k := 0; k < 100; k++ {
				p.Send(1, k, 64)
				if _, ok := p.Recv(); !ok {
					return
				}
			}
		})
		sim.Spawn(func(p *vtime.Proc) {
			for k := 0; k < 100; k++ {
				if _, ok := p.Recv(); !ok {
					return
				}
				p.Send(0, k, 64)
			}
		})
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterLinkModel measures the NIC-serialization link model.
func BenchmarkClusterLinkModel(b *testing.B) {
	c := netmodel.NewCluster(netmodel.Ethernet10Mbps())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Delivery(i%16, (i+1)%16, 2048, vtime.Time(i)*vtime.Time(time.Microsecond))
	}
}

// BenchmarkReferenceGame measures the pure lockstep game simulation.
func BenchmarkReferenceGame(b *testing.B) {
	cfg := game.DefaultConfig(8, 1)
	cfg.MaxTicks = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := game.RunReference(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemnetGame measures a full distributed game on the in-memory
// transport (real goroutine concurrency, no network model).
func BenchmarkMemnetGame(b *testing.B) {
	cfg := game.DefaultConfig(8, 1)
	cfg.MaxTicks = 100
	for i := 0; i < b.N; i++ {
		net := transport.NewMemNetwork(cfg.Teams)
		errc := make(chan error, cfg.Teams)
		for t := 0; t < cfg.Teams; t++ {
			t := t
			go func() {
				_, err := lookahead.RunPlayer(lookahead.PlayerConfig{
					Game:     cfg,
					Protocol: lookahead.MSYNC2,
					Endpoint: net.Endpoint(t),
					Metrics:  metrics.NewCollector(),
				})
				errc <- err
			}()
		}
		for t := 0; t < cfg.Teams; t++ {
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		}
		net.Close()
	}
}
