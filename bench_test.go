package sdso

// Benchmarks regenerating the paper's evaluation (one per figure panel),
// plus ablations for the design choices DESIGN.md calls out and
// microbenchmarks of the hot substrates.
//
//	go test -bench=. -benchmem
//
// The bodies live in internal/benchsuite so cmd/bench can run the same
// suite via testing.Benchmark and emit a benchmark-trajectory JSON file
// (main packages cannot reach code in _test.go files). See that package
// for what each benchmark measures and reports.

import (
	"testing"

	"sdso/internal/benchsuite"
)

func BenchmarkFig5Range1(b *testing.B) { benchsuite.Fig5Range1(b) }

func BenchmarkFig5Range3(b *testing.B) { benchsuite.Fig5Range3(b) }

func BenchmarkFig6Range1(b *testing.B) { benchsuite.Fig6Range1(b) }

func BenchmarkFig6Range3(b *testing.B) { benchsuite.Fig6Range3(b) }

func BenchmarkFig7Range1(b *testing.B) { benchsuite.Fig7Range1(b) }

func BenchmarkFig7Range3(b *testing.B) { benchsuite.Fig7Range3(b) }

func BenchmarkFig8(b *testing.B) { benchsuite.Fig8(b) }

func BenchmarkAblationDiffMerge(b *testing.B) { benchsuite.AblationDiffMerge(b) }

func BenchmarkAblationSpatialFilter(b *testing.B) { benchsuite.AblationSpatialFilter(b) }

func BenchmarkExtensionLRC(b *testing.B) { benchsuite.ExtensionLRC(b) }

func BenchmarkExtensionCausal(b *testing.B) { benchsuite.ExtensionCausal(b) }

func BenchmarkDiffComputeApply(b *testing.B) { benchsuite.DiffComputeApply(b) }

func BenchmarkDiffMergeChain(b *testing.B) { benchsuite.DiffMergeChain(b) }

func BenchmarkWireCodec(b *testing.B) { benchsuite.WireCodec(b) }

func BenchmarkExchangeList(b *testing.B) { benchsuite.ExchangeList(b) }

func BenchmarkVtimePingPong(b *testing.B) { benchsuite.VtimePingPong(b) }

func BenchmarkClusterLinkModel(b *testing.B) { benchsuite.ClusterLinkModel(b) }

func BenchmarkReferenceGame(b *testing.B) { benchsuite.ReferenceGame(b) }

func BenchmarkMemnetGame(b *testing.B) { benchsuite.MemnetGame(b) }

func BenchmarkBroadcastFanout4(b *testing.B) { benchsuite.BroadcastFanout4(b) }

func BenchmarkBroadcastFanout8(b *testing.B) { benchsuite.BroadcastFanout8(b) }

func BenchmarkBroadcastFanout16(b *testing.B) { benchsuite.BroadcastFanout16(b) }

func BenchmarkBroadcastFanoutPerPeer16(b *testing.B) { benchsuite.BroadcastFanoutPerPeer16(b) }

func BenchmarkTCPLoopbackExchange(b *testing.B) { benchsuite.TCPLoopbackExchange(b) }

func BenchmarkFramesPerExchange(b *testing.B) { benchsuite.FramesPerExchange(b) }

func BenchmarkDeltaBytesPerExchange(b *testing.B) { benchsuite.DeltaBytesPerExchange(b) }

func BenchmarkDeltaGamesPerSec64(b *testing.B) { benchsuite.DeltaGamesPerSec64(b) }

func BenchmarkDeltaGamesPerSec128(b *testing.B) { benchsuite.DeltaGamesPerSec128(b) }
