module sdso

go 1.22
