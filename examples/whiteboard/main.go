// Whiteboard: a collaborative canvas where each user paints inside a
// drifting viewport. Users only need fresh tiles where viewports meet, so
// the exchange schedule is driven by a custom semantic function over
// viewport distance — the whiteboard analogue of the paper's tank-distance
// lookahead. Far-apart users exchange rarely; approaching users exchange
// every tick; a final broadcast reconciles everything.
//
//	go run ./examples/whiteboard
package main

import (
	"fmt"
	"log"
	"sync"

	"sdso"
)

const (
	users    = 4
	gridW    = 24
	gridH    = 16
	ticks    = 40
	overlapR = 4 // viewports closer than this must stay fresh
)

type vec struct{ x, y int }

// viewportAt returns user u's deterministic drifting viewport center at a
// tick: each user orbits a different quadrant and they brush past each
// other mid-board.
func viewportAt(u int, tick int64) vec {
	baseX := (u%2)*gridW/2 + gridW/4
	baseY := (u/2)*gridH/2 + gridH/4
	dx := int(tick) % 7
	dy := (int(tick) / 2) % 5
	if u%2 == 0 {
		return vec{baseX + dx - 3, baseY + dy - 2}
	}
	return vec{baseX - dx + 3, baseY - dy + 2}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func dist(a, b vec) int {
	dx, dy := a.x-b.x, a.y-b.y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func tile(p vec) sdso.ObjectID {
	return sdso.ObjectID(clamp(p.y, 0, gridH-1)*gridW + clamp(p.x, 0, gridW-1))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	endpoints := sdso.LocalGroup(users)
	defer func() {
		for _, ep := range endpoints {
			ep.Close()
		}
	}()

	canvases := make([][]byte, users)
	stats := make([]sdso.Stats, users)
	errs := make([]error, users)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			canvases[u], stats[u], errs[u] = paint(endpoints[u])
		}()
	}
	wg.Wait()
	for u, err := range errs {
		if err != nil {
			return fmt.Errorf("user %d: %w", u, err)
		}
	}

	// After the final broadcast every replica must be identical.
	for u := 1; u < users; u++ {
		if string(canvases[u]) != string(canvases[0]) {
			return fmt.Errorf("user %d's canvas diverged after reconciliation", u)
		}
	}
	fmt.Println(render(canvases[0]))
	total := 0
	for _, st := range stats {
		total += st.MessagesSent
	}
	naive := users * (users - 1) * 2 * ticks // per-tick (data,SYNC) pairs to everyone
	fmt.Printf("all %d canvases identical after reconciliation\n", users)
	fmt.Printf("messages: %d (an every-tick broadcast schedule would send ~%d)\n", total, naive)
	return nil
}

// paint runs one user: stroke the tile under the viewport each tick,
// exchanging per the spatial schedule; finish with a broadcast flush.
func paint(ep sdso.Endpoint) ([]byte, sdso.Stats, error) {
	// Beacons carry the sender's viewport center; remember peers'.
	lastSeen := make(map[int]vec)
	rt, err := sdso.New(ep, sdso.WithBeaconObserver(func(peer int, b []int64) {
		if len(b) == 2 {
			lastSeen[peer] = vec{int(b[0]), int(b[1])}
		}
	}))
	if err != nil {
		return nil, sdso.Stats{}, err
	}
	me := rt.ID()

	for i := 0; i < gridW*gridH; i++ {
		if err := rt.Share(sdso.ObjectID(i), []byte{' '}); err != nil {
			return nil, sdso.Stats{}, err
		}
	}
	for peer := 0; peer < rt.N(); peer++ {
		if peer != me {
			lastSeen[peer] = viewportAt(peer, 0)
		}
	}

	// The whiteboard s-function: viewports drift at most one tile per
	// tick each, so they cannot meet (come within overlapR) for at least
	// (d - overlapR) / 2 ticks.
	sfunc := func(peer int, now int64, _ []int64) int64 {
		d := dist(viewportAt(me, now), lastSeen[peer])
		gap := int64((d - overlapR) / 2)
		if gap < 1 {
			gap = 1
		}
		return now + gap
	}

	for k := int64(1); k <= ticks; k++ {
		vp := viewportAt(me, k)
		mark := byte('A' + me)
		if err := rt.Write(tile(vp), []byte{mark}); err != nil {
			return nil, sdso.Stats{}, err
		}
		err := rt.Exchange(sdso.ExchangeOptions{
			Resync: true,
			SFunc:  sfunc,
			// Ship strokes only to users whose viewports could reach
			// ours soon; others keep buffering.
			SendData: func(peer int) bool {
				return dist(viewportAt(me, rt.Now()), lastSeen[peer]) <= 4*overlapR
			},
			// Both sides' semantic functions must see the same inputs
			// (schedule symmetry): the beacon carries this tick's
			// viewport, and sfunc compares same-tick viewports.
			Beacon: func(peer int) []int64 {
				v := viewportAt(me, rt.Now())
				return []int64{int64(v.x), int64(v.y)}
			},
		})
		if err != nil {
			return nil, sdso.Stats{}, err
		}
	}

	// Reconcile: one broadcast exchange flushes every buffered stroke to
	// everyone (the paper's how=broadcast mode).
	err = rt.Exchange(sdso.ExchangeOptions{
		Resync: true,
		How:    sdso.Broadcast,
		SFunc:  sdso.EveryTick,
	})
	if err != nil {
		return nil, sdso.Stats{}, err
	}

	canvas := make([]byte, gridW*gridH)
	for i := range canvas {
		b, err := rt.Read(sdso.ObjectID(i))
		if err != nil {
			return nil, sdso.Stats{}, err
		}
		canvas[i] = b[0]
	}
	return canvas, rt.Stats(), nil
}

func render(canvas []byte) string {
	out := make([]byte, 0, (gridW+1)*gridH)
	for y := 0; y < gridH; y++ {
		out = append(out, canvas[y*gridW:(y+1)*gridW]...)
		out = append(out, '\n')
	}
	return string(out)
}
