// Tankgame runs the paper's evaluation application — the distributed
// multi-player "capture the flag" tank game — under every consistency
// protocol and prints a side-by-side comparison, a miniature of the paper's
// §4 evaluation.
//
//	go run ./examples/tankgame
//	go run ./examples/tankgame -teams 16 -range 3 -seed 9
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sdso/internal/game"
	"sdso/internal/harness"
)

func main() {
	teams := flag.Int("teams", 8, "number of teams (= processes)")
	rng := flag.Int("range", 1, "tank visibility range")
	seed := flag.Int64("seed", 1, "world seed")
	flag.Parse()

	if err := run(*teams, *rng, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(teams, rng int, seed int64) error {
	g := game.DefaultConfig(teams, rng)
	g.Seed = seed
	g.MaxTicks = 200
	g.EndOnFirstGoal = true

	w, err := game.NewWorld(g)
	if err != nil {
		return err
	}
	fmt.Printf("the arena (%d teams racing to the goal G, $ bonus, * bomb):\n\n%s\n", teams, w)

	fmt.Printf("%-8s %-10s %-9s %-10s %-11s %-10s\n",
		"protocol", "winner", "in-ticks", "messages", "data-msgs", "virtual-time")
	for _, proto := range []harness.Protocol{
		harness.BSYNC, harness.MSYNC, harness.MSYNC2, harness.EC, harness.LRC, harness.Causal, harness.Central,
	} {
		res, err := harness.Run(harness.Config{Game: g, Protocol: proto})
		if err != nil {
			return fmt.Errorf("%s: %w", proto, err)
		}
		winner, winTick := "-", int64(0)
		for _, st := range res.Stats {
			if st.ReachedGoal {
				winner = fmt.Sprintf("team %d", st.Team)
				winTick = st.DoneTick
				break
			}
		}
		fmt.Printf("%-8s %-10s %-9d %-10d %-11d %-10v\n",
			proto, winner, winTick,
			res.Metrics.TotalMsgs(), res.Metrics.DataMsgs(),
			res.VirtualDuration.Round(time.Millisecond))
	}
	fmt.Println("\nSame game, same seed: the lookahead protocols (BSYNC/MSYNC/MSYNC2) and")
	fmt.Println("causal memory reproduce the identical match; EC and LRC play it with locks;")
	fmt.Println("CENTRAL routes everything through one authoritative server. Note MSYNC2's")
	fmt.Println("message economy and EC's data-message frugality at lock-RTT cost.")
	return nil
}
