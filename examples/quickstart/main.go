// Quickstart: three processes share a set of counters through S-DSO and
// keep them consistent with synchronous exchanges (the BSYNC pattern —
// rendezvous with every peer at every logical tick).
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"sdso"
)

const (
	procs = 3
	ticks = 5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Wire an in-process group. For a real deployment, use
	// sdso.ConnectTCP with one listen address per process.
	endpoints := sdso.LocalGroup(procs)
	defer func() {
		for _, ep := range endpoints {
			ep.Close()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, procs)
	finals := make([][]uint64, procs)
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			finals[i], errs[i] = worker(endpoints[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
	}

	for i, counters := range finals {
		fmt.Printf("process %d sees counters %v\n", i, counters)
	}
	fmt.Println("all replicas agree: every counter reached", ticks)
	return nil
}

// worker is one process: it owns counter <id> and increments it once per
// tick, exchanging with everyone so all replicas stay in lockstep.
func worker(ep sdso.Endpoint) ([]uint64, error) {
	rt, err := sdso.New(ep)
	if err != nil {
		return nil, err
	}

	// share() every object once, up front, with identical initial state
	// on every process.
	for obj := 0; obj < procs; obj++ {
		if err := rt.Share(sdso.ObjectID(obj), encode(0)); err != nil {
			return nil, err
		}
	}

	mine := sdso.ObjectID(rt.ID())
	for k := 1; k <= ticks; k++ {
		// Modify the local replica...
		if err := rt.Write(mine, encode(uint64(k))); err != nil {
			return nil, err
		}
		// ...and exchange: push updates, rendezvous with all peers, and
		// reschedule them for the next tick.
		err := rt.Exchange(sdso.ExchangeOptions{
			Resync: true,
			SFunc:  sdso.EveryTick,
		})
		if err != nil {
			return nil, err
		}
	}

	out := make([]uint64, procs)
	for obj := 0; obj < procs; obj++ {
		b, err := rt.Read(sdso.ObjectID(obj))
		if err != nil {
			return nil, err
		}
		out[obj] = binary.BigEndian.Uint64(b)
	}
	return out, nil
}

func encode(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}
