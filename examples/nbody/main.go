// Nbody: a 2D n-body simulation with a gravitational cutoff radius — the
// paper's §2.1 scientific motivation ("n-body simulations, where the
// gravitational effects of bodies on each other are considered only when
// two bodies are within minimum distance d of each other"). Each process
// owns a cluster of bodies; clusters far apart skip exchanges entirely, and
// the same distance-halving lookahead the tank game uses schedules the next
// rendezvous.
//
//	go run ./examples/nbody
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"

	"sdso"
)

const (
	procs        = 3
	bodiesPer    = 4
	steps        = 60
	cutoff       = 12.0 // gravitational cutoff radius d
	dt           = 0.1
	gravity      = 8.0
	maxBodySpeed = 1.0 // enforced speed cap; the lookahead bound relies on it
)

type body struct {
	x, y, vx, vy float64
}

func encodeBody(b body) []byte {
	out := make([]byte, 32)
	binary.BigEndian.PutUint64(out[0:], math.Float64bits(b.x))
	binary.BigEndian.PutUint64(out[8:], math.Float64bits(b.y))
	binary.BigEndian.PutUint64(out[16:], math.Float64bits(b.vx))
	binary.BigEndian.PutUint64(out[24:], math.Float64bits(b.vy))
	return out
}

func decodeBody(buf []byte) body {
	return body{
		x:  math.Float64frombits(binary.BigEndian.Uint64(buf[0:])),
		y:  math.Float64frombits(binary.BigEndian.Uint64(buf[8:])),
		vx: math.Float64frombits(binary.BigEndian.Uint64(buf[16:])),
		vy: math.Float64frombits(binary.BigEndian.Uint64(buf[24:])),
	}
}

// initialBody places process p's k-th body: three clusters far apart, on
// slow collision courses.
func initialBody(p, k int) body {
	angle := 2 * math.Pi * float64(k) / bodiesPer
	cx := []float64{0, 60, 30}[p]
	cy := []float64{0, 0, 50}[p]
	toward := []float64{1, -1, 0}[p]
	return body{
		x:  cx + 3*math.Cos(angle),
		y:  cy + 3*math.Sin(angle),
		vx: 0.6 * toward,
		vy: -0.4 * []float64{0, 0, 1}[p],
	}
}

func objID(p, k int) sdso.ObjectID { return sdso.ObjectID(p*bodiesPer + k) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	endpoints := sdso.LocalGroup(procs)
	defer func() {
		for _, ep := range endpoints {
			ep.Close()
		}
	}()

	finals := make([][]body, procs)
	stats := make([]sdso.Stats, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			finals[p], stats[p], errs[p] = simulate(endpoints[p])
		}()
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return fmt.Errorf("process %d: %w", p, err)
		}
	}

	for p := 1; p < procs; p++ {
		for i := range finals[0] {
			if finals[p][i] != finals[0][i] {
				return fmt.Errorf("replica %d body %d diverged after reconciliation", p, i)
			}
		}
	}
	fmt.Printf("%d bodies, %d steps, cutoff radius %.0f\n", procs*bodiesPer, steps, cutoff)
	for i, b := range finals[0] {
		fmt.Printf("body %2d: pos=(%7.2f, %7.2f) vel=(%5.2f, %5.2f)\n", i, b.x, b.y, b.vx, b.vy)
	}
	total := 0
	for _, st := range stats {
		total += st.MessagesSent
	}
	fmt.Printf("replicas agree; messages: %d (every-step broadcast would send ~%d)\n",
		total, procs*(procs-1)*2*steps)
	return nil
}

// simulate runs one process: integrate owned bodies, exchanging with other
// clusters only when they could come within the cutoff.
func simulate(ep sdso.Endpoint) ([]body, sdso.Stats, error) {
	clusters := make(map[int][]body) // last-known bodies per peer
	rt, err := sdso.New(ep, sdso.WithBeaconObserver(func(peer int, ints []int64) {
		bodies := make([]body, 0, len(ints)/2)
		for i := 0; i+1 < len(ints); i += 2 {
			bodies = append(bodies, body{
				x: float64(ints[i]) / 1000,
				y: float64(ints[i+1]) / 1000,
			})
		}
		clusters[peer] = bodies
	}))
	if err != nil {
		return nil, sdso.Stats{}, err
	}
	me := rt.ID()

	mine := make([]body, bodiesPer)
	for p := 0; p < procs; p++ {
		for k := 0; k < bodiesPer; k++ {
			b := initialBody(p, k)
			if err := rt.Share(objID(p, k), encodeBody(b)); err != nil {
				return nil, sdso.Stats{}, err
			}
			if p == me {
				mine[k] = b
			} else {
				clusters[p] = append(clusters[p], b)
			}
		}
	}

	minDist := func(a, b []body) float64 {
		best := math.Inf(1)
		for _, p := range a {
			for _, q := range b {
				d := math.Hypot(p.x-q.x, p.y-q.y)
				if d < best {
					best = d
				}
			}
		}
		return best
	}
	// quantize mirrors the beacon encoding so both rendezvous partners
	// compute the schedule from bit-identical inputs (schedule symmetry).
	quantize := func(bs []body) []body {
		out := make([]body, len(bs))
		for i, b := range bs {
			out[i] = body{x: float64(int64(b.x*1000)) / 1000, y: float64(int64(b.y*1000)) / 1000}
		}
		return out
	}
	// Bodies move at most maxBodySpeed*dt per step, so two clusters at
	// distance D cannot come within the cutoff for at least
	// (D - cutoff) / (2 * maxBodySpeed * dt) steps.
	sfunc := func(peer int, now int64, _ []int64) int64 {
		d := minDist(quantize(mine), clusters[peer])
		gap := int64((d - cutoff) / (2 * maxBodySpeed * dt) / 2) // extra 2x margin
		if gap < 1 {
			gap = 1
		}
		return now + gap
	}
	beacon := func(peer int) []int64 {
		out := make([]int64, 0, 2*len(mine))
		for _, b := range mine {
			out = append(out, int64(b.x*1000), int64(b.y*1000))
		}
		return out
	}

	for step := 1; step <= steps; step++ {
		// Forces from every body within the cutoff: own bodies exactly,
		// remote bodies from the replicated objects (fresh whenever
		// within the cutoff, by the lookahead schedule).
		var others []body
		for p := 0; p < procs; p++ {
			if p == me {
				continue
			}
			for k := 0; k < bodiesPer; k++ {
				buf, err := rt.Read(objID(p, k))
				if err != nil {
					return nil, sdso.Stats{}, err
				}
				others = append(others, decodeBody(buf))
			}
		}
		next := make([]body, len(mine))
		for i, b := range mine {
			ax, ay := 0.0, 0.0
			accumulate := func(o body) {
				dx, dy := o.x-b.x, o.y-b.y
				d2 := dx*dx + dy*dy
				d := math.Sqrt(d2)
				if d < 1e-3 || d > cutoff {
					return // outside the cutoff radius: ignored, as in the paper
				}
				f := gravity / (d2 + 1)
				ax += f * dx / d
				ay += f * dy / d
			}
			for j, o := range mine {
				if j != i {
					accumulate(o)
				}
			}
			for _, o := range others {
				accumulate(o)
			}
			nb := body{
				x: b.x + b.vx*dt, y: b.y + b.vy*dt,
				vx: clampAbs(b.vx+ax*dt, maxBodySpeed),
				vy: clampAbs(b.vy+ay*dt, maxBodySpeed),
			}
			next[i] = nb
		}
		mine = next
		for k, b := range mine {
			if err := rt.Write(objID(me, k), encodeBody(b)); err != nil {
				return nil, sdso.Stats{}, err
			}
		}
		err := rt.Exchange(sdso.ExchangeOptions{
			Resync: true,
			SFunc:  sfunc,
			SendData: func(peer int) bool {
				return minDist(mine, clusters[peer]) <= 2*cutoff
			},
			Beacon: beacon,
		})
		if err != nil {
			return nil, sdso.Stats{}, err
		}
	}

	// Reconcile all replicas with one broadcast exchange.
	err = rt.Exchange(sdso.ExchangeOptions{Resync: true, How: sdso.Broadcast, SFunc: sdso.EveryTick})
	if err != nil {
		return nil, sdso.Stats{}, err
	}

	out := make([]body, 0, procs*bodiesPer)
	for p := 0; p < procs; p++ {
		for k := 0; k < bodiesPer; k++ {
			buf, err := rt.Read(objID(p, k))
			if err != nil {
				return nil, sdso.Stats{}, err
			}
			out = append(out, decodeBody(buf))
		}
	}
	return out, rt.Stats(), nil
}

func clampAbs(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}
