package sdso

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// TestPublicAPILockstep drives the public API end to end: a group of
// processes shares counters and exchanges every tick (the BSYNC pattern).
func TestPublicAPILockstep(t *testing.T) {
	const n, ticks = 3, 5
	eps := LocalGroup(n)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	rts := make([]*Runtime, n)
	for i := 0; i < n; i++ {
		rt, err := New(eps[i])
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rts[i] = rt
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := rts[i]
			for obj := 0; obj < n; obj++ {
				if err := rt.Share(ObjectID(obj), u64(0)); err != nil {
					errs[i] = err
					return
				}
			}
			for k := 1; k <= ticks; k++ {
				if err := rt.Write(ObjectID(rt.ID()), u64(uint64(k))); err != nil {
					errs[i] = err
					return
				}
				if err := rt.Exchange(ExchangeOptions{Resync: true, SFunc: EveryTick}); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
	}
	for i, rt := range rts {
		for obj := 0; obj < n; obj++ {
			b, err := rt.Read(ObjectID(obj))
			if err != nil {
				t.Fatal(err)
			}
			if got := binary.BigEndian.Uint64(b); got != ticks {
				t.Errorf("proc %d object %d = %d, want %d", i, obj, got, ticks)
			}
		}
		if rt.Now() != ticks {
			t.Errorf("proc %d logical clock = %d", i, rt.Now())
		}
		st := rt.Stats()
		if st.MessagesSent == 0 || st.LogicalTicks != ticks {
			t.Errorf("proc %d stats = %+v", i, st)
		}
	}
}

// TestPublicAPISpatialFilter uses a custom SFunc + SendData filter through
// the public surface.
func TestPublicAPISpatialFilter(t *testing.T) {
	eps := LocalGroup(2)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	seen := make([][]int64, 2)
	rts := make([]*Runtime, 2)
	for i := 0; i < 2; i++ {
		i := i
		rt, err := New(eps[i], WithBeaconObserver(func(peer int, beacon []int64) {
			seen[i] = append([]int64(nil), beacon...)
		}))
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := rts[i]
			if err := rt.Share(1, u64(0)); err != nil {
				t.Error(err)
				return
			}
			if err := rt.Write(1, u64(uint64(10+i))); err != nil && i == 0 {
				t.Error(err)
			}
			opts := ExchangeOptions{
				Resync:   true,
				SFunc:    func(peer int, now int64, _ []int64) int64 { return now + 3 },
				SendData: func(peer int) bool { return false }, // withhold
				Beacon:   func(peer int) []int64 { return []int64{int64(rt.ID()), 42} },
			}
			if err := rt.Exchange(opts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if len(seen[i]) != 2 || seen[i][1] != 42 {
			t.Errorf("proc %d beacon = %v", i, seen[i])
		}
		if got := rts[i].PendingObjects(1 - i); len(got) != 1 {
			t.Errorf("proc %d pending = %v, want the withheld object", i, got)
		}
	}
}

// TestPublicAPIPutsGets drives the put/get primitives.
func TestPublicAPIPutsGets(t *testing.T) {
	eps := LocalGroup(2)
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	done := make(chan error, 2)
	var rts [2]*Runtime
	for i := 0; i < 2; i++ {
		rt, err := New(eps[i])
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	go func() {
		rt := rts[0]
		if err := rt.Share(7, u64(0)); err != nil {
			done <- err
			return
		}
		if err := rt.Write(7, u64(99)); err != nil {
			done <- err
			return
		}
		done <- rt.SyncPut(7, 1)
	}()
	go func() {
		rt := rts[1]
		if err := rt.Share(7, u64(0)); err != nil {
			done <- err
			return
		}
		// Pump until the push lands (SyncPut acks through our runtime).
		for {
			b, err := rt.Read(7)
			if err != nil {
				done <- err
				return
			}
			if binary.BigEndian.Uint64(b) == 99 {
				done <- nil
				return
			}
			rt.Poll()
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Endpoint{}); err == nil {
		t.Error("disconnected endpoint accepted")
	}
	if err := (Endpoint{}).Close(); err != nil {
		t.Errorf("Close of zero endpoint: %v", err)
	}
}
