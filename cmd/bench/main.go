// Command bench runs the repo's benchmark suite (internal/benchsuite) —
// the figure regenerations, ablations, and substrate microbenchmarks — via
// testing.Benchmark and writes one machine-readable trajectory file with
// ns/op, allocs/op, and B/op for every benchmark, plus each benchmark's
// reported series metrics. The checked-in BENCH_PR4.json at the repo root
// was produced by this tool (BENCH_PR3.json is the previous trajectory);
// regenerate it with:
//
//	go run ./cmd/bench
//
// The delta-exchange, interest-management, and world-sharding suites
// write their own trajectory files so the PR4 baseline stays byte-stable;
// regenerate BENCH_PR8.json with `go run ./cmd/bench -suite delta`,
// BENCH_PR9.json with `go run ./cmd/bench -suite interest`, and
// BENCH_PR10.json with `go run ./cmd/bench -suite shard`.
//
// Flags:
//
//	-suite name which suite to run: "all" (default; BENCH_PR4.json),
//	            "delta" (BENCH_PR8.json), "interest" (BENCH_PR9.json),
//	            or "shard" (BENCH_PR10.json)
//	-o file     output path (default depends on -suite)
//	-run substr only benchmarks whose name contains substr
//	-q          quiet: no per-benchmark progress on stderr
//	-check      verify the trajectory file covers the selected suite
//	            (exists and has a result for every benchmark) without
//	            running anything; CI fails the build on a stale file
//	-workers n  bound the figure sweeps' worker pool (sets GOMAXPROCS)
//	-cpuprofile file / -memprofile file
//	            write pprof profiles of the benchmark run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"sdso/internal/benchsuite"
)

// result is one benchmark's measurement in the trajectory file.
type result struct {
	Name        string `json:"name"`
	N           int    `json:"n"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// Extra carries the series a figure benchmark reported through
	// b.ReportMetric (e.g. "MSYNC2_n16_msgs": 1234).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// trajectory is the top-level shape of BENCH_PR4.json.
type trajectory struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// GoMaxProcs and SweepWorkers record the actual parallelism the run
	// had: NumCPU alone reads 1 in throttled CI containers and makes
	// trajectories hard to compare across machines. SweepWorkers is the
	// worker-pool bound the figure sweeps ran with (-workers, default
	// GOMAXPROCS).
	GoMaxProcs   int      `json:"gomaxprocs,omitempty"`
	SweepWorkers int      `json:"sweep_workers,omitempty"`
	Results      []result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	suiteName := fs.String("suite", "all", `which suite to run: "all" or "delta"`)
	out := fs.String("o", "", "output path for the trajectory JSON (default depends on -suite)")
	match := fs.String("run", "", "only benchmarks whose name contains this substring")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress on stderr")
	check := fs.Bool("check", false, "verify the trajectory file covers the selected suite; run nothing")
	workers := fs.Int("workers", 0, "sweep worker-pool bound (sets GOMAXPROCS; 0 keeps the environment's)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
		}()
	}
	suite, defaultOut, err := selectSuite(*suiteName)
	if err != nil {
		return err
	}
	if *out == "" {
		*out = defaultOut
	}
	if *check {
		return checkTrajectory(*out, suite)
	}

	traj := trajectory{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SweepWorkers: runtime.GOMAXPROCS(0),
	}
	for _, bench := range suite {
		if *match != "" && !strings.Contains(bench.Name, *match) {
			continue
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s...\n", bench.Name)
		}
		r := testing.Benchmark(bench.F)
		if r.N == 0 {
			// testing.Benchmark returns a zero result when the benchmark
			// failed (b.Fatal); surface that instead of recording zeros.
			return fmt.Errorf("benchmark %s failed", bench.Name)
		}
		traj.Results = append(traj.Results, result{
			Name:        bench.Name,
			N:           r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       r.Extra,
		})
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  %d ops, %d ns/op, %d B/op, %d allocs/op\n",
				r.N, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		}
	}
	if len(traj.Results) == 0 {
		return fmt.Errorf("no benchmarks matched %q", *match)
	}

	buf, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(traj.Results))
	}
	return nil
}

// selectSuite resolves a -suite name to its benchmark list and default
// trajectory file.
func selectSuite(name string) ([]benchsuite.Bench, string, error) {
	switch name {
	case "all":
		return benchsuite.All(), "BENCH_PR4.json", nil
	case "delta":
		return benchsuite.Delta(), "BENCH_PR8.json", nil
	case "interest":
		return benchsuite.Interest(), "BENCH_PR9.json", nil
	case "shard":
		return benchsuite.Shard(), "BENCH_PR10.json", nil
	default:
		return nil, "", fmt.Errorf("unknown suite %q (want \"all\", \"delta\", \"interest\", or \"shard\")", name)
	}
}

// checkTrajectory verifies that the checked-in trajectory file is not stale
// relative to the selected suite: it must exist, parse, and hold a result
// for every benchmark the suite currently lists. A new or renamed benchmark
// without a regenerated file fails the check (and CI with it).
func checkTrajectory(path string, suite []benchsuite.Bench) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("trajectory file missing (regenerate with `go run ./cmd/bench`): %w", err)
	}
	var traj trajectory
	if err := json.Unmarshal(buf, &traj); err != nil {
		return fmt.Errorf("trajectory file %s is corrupt: %w", path, err)
	}
	have := make(map[string]bool, len(traj.Results))
	for _, r := range traj.Results {
		have[r.Name] = true
	}
	var missing []string
	for _, bench := range suite {
		if !have[bench.Name] {
			missing = append(missing, bench.Name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s is stale: missing benchmarks %s (regenerate with `go run ./cmd/bench`)",
			path, strings.Join(missing, ", "))
	}
	fmt.Printf("%s covers all %d suite benchmarks\n", path, len(suite))
	return nil
}
