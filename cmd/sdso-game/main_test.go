package main

import "testing"

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-protocol", "NOPE"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSmallGame(t *testing.T) {
	if err := run([]string{"-protocol", "MSYNC2", "-teams", "3", "-ticks", "80", "-show"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-protocol", "EC", "-teams", "2", "-ticks", "60"}); err != nil {
		t.Fatalf("run EC: %v", err)
	}
}
