// Command sdso-game plays one complete tank game (the paper's evaluation
// application) under a chosen consistency protocol on the simulated cluster
// and reports per-team outcomes and protocol costs.
//
// Usage:
//
//	sdso-game -protocol MSYNC2 -teams 8 -range 1 -seed 7 -show
package main

import (
	"flag"
	"fmt"
	"os"

	"sdso/internal/game"
	"sdso/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdso-game:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdso-game", flag.ContinueOnError)
	proto := fs.String("protocol", "MSYNC2", "consistency protocol: BSYNC, MSYNC, MSYNC2, EC, LRC, CAUSAL")
	teams := fs.Int("teams", 8, "number of teams (= processes)")
	rng := fs.Int("range", 1, "tank visibility range")
	seed := fs.Int64("seed", 1, "world placement seed")
	ticks := fs.Int("ticks", 200, "game horizon in logical ticks")
	race := fs.Bool("race", true, "end the game when the first team reaches the goal")
	show := fs.Bool("show", false, "render the initial world")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g := game.DefaultConfig(*teams, *rng)
	g.Seed = *seed
	g.MaxTicks = *ticks
	g.EndOnFirstGoal = *race

	if *show {
		w, err := game.NewWorld(g)
		if err != nil {
			return err
		}
		fmt.Printf("initial world (goal G at %v):\n%s\n", w.Goal, w)
	}

	res, err := harness.Run(harness.Config{Game: g, Protocol: harness.Protocol(*proto)})
	if err != nil {
		return err
	}

	fmt.Printf("protocol %s, %d teams, range %d, seed %d\n", *proto, *teams, *rng, *seed)
	fmt.Printf("%-6s %-7s %-6s %-6s %-8s %-10s %s\n",
		"team", "ticks", "mods", "score", "goal", "destroyed", "done-at")
	for _, st := range res.Stats {
		fmt.Printf("%-6d %-7d %-6d %-6d %-8v %-10v %d\n",
			st.Team, st.Ticks, st.Mods, st.Score, st.ReachedGoal, st.Destroyed, st.DoneTick)
	}
	fmt.Printf("\nvirtual duration: %v\n", res.VirtualDuration)
	fmt.Printf("messages: %d total (%d data, %d control)\n",
		res.Metrics.TotalMsgs(), res.Metrics.DataMsgs(), res.Metrics.ControlMsgs())
	fmt.Printf("normalized execution time: %v per modification\n", res.Metrics.NormalizedExecTime())
	fmt.Printf("protocol overhead: %.1f%% of execution time\n", res.Metrics.AvgOverheadPct())
	fmt.Printf("message kinds: %s\n", res.Metrics.KindBreakdown())
	return nil
}
