// Command sdso-check sweeps the consistency oracle over seeded delivery
// schedules for the paper's four protocols: each schedule runs a complete
// game with every message delivery perturbed by a seed-derived jitter
// (optionally under an ambient faultnet drop/dup/delay plan), records the
// per-process observation history, and replays it through the
// internal/check invariants. The QUORUM grid drives the ABD replication
// engine instead: seeded operation schedules with crash plans that kill up
// to f replicas mid-protocol (including mid-phase-2), checked against the
// quorum invariants. The SHARD grid drives the world-sharding handoff
// engine: seeded schedules interleaving puts, live shard migrations, and
// crash plans that kill handoff participants at each protocol step
// (source after START, target around the END commit, both mid-transfer),
// checked against the shard-ownership invariants — no region double-owned
// or orphaned, no covered acked write lost. Any failure is greedily
// shrunk and reported with the command line that reproduces it.
//
// Usage:
//
//	sdso-check                                  # 64 schedules per protocol
//	sdso-check -protocols MSYNC2 -schedules 16  # one protocol, quick
//	sdso-check -seed 7 -fault-every 4           # every 4th schedule lossy
//	sdso-check -protocols QUORUM -quorum-f 2    # ABD grid, f=2 only
//	sdso-check -protocols SHARD -shards 4,16    # handoff grid, two counts
//	sdso-check -repro 23 -protocols EC -fault-every 1
//	                                            # replay one shrunk schedule
//	sdso-check -protocols BSYNC,MSYNC,MSYNC2 -interest
//	                                            # spatial interest filter on
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sdso/internal/check"
	"sdso/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdso-check:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdso-check", flag.ContinueOnError)
	protos := fs.String("protocols", "BSYNC,MSYNC,MSYNC2,EC,QUORUM,SHARD", "comma-separated protocols to check")
	schedules := fs.Int("schedules", 64, "delivery schedules (seeds) explored per protocol")
	seed := fs.Int64("seed", 1, "first schedule seed; schedule i runs seed+i")
	teams := fs.Int("teams", 4, "number of players")
	ticks := fs.Int("ticks", 48, "game horizon in logical ticks")
	faultEvery := fs.Int("fault-every", 4, "run every Nth schedule under ambient message faults (0 = never)")
	quorumF := fs.String("quorum-f", "1,2", "replication factors swept by the QUORUM grid")
	shardCounts := fs.String("shards", "4,8,16", "shard counts swept by the SHARD grid")
	interest := fs.Bool("interest", false, "run the lookahead protocols with spatial interest management on (arms the interest-safety invariants)")
	repro := fs.Int64("repro", 0, "replay exactly the one schedule with this seed (as printed in a repro line) and exit")
	verbose := fs.Bool("v", false, "print per-protocol progress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var list []harness.Protocol
	quorum := false
	shardGrid := false
	for _, p := range strings.Split(*protos, ",") {
		name := harness.Protocol(strings.ToUpper(strings.TrimSpace(p)))
		switch name {
		case harness.BSYNC, harness.MSYNC, harness.MSYNC2:
			list = append(list, name)
		case harness.EC:
			if *interest {
				return fmt.Errorf("-interest applies to the lookahead protocols; drop EC from -protocols")
			}
			list = append(list, name)
		case "QUORUM":
			quorum = true
		case "SHARD":
			shardGrid = true
		default:
			return fmt.Errorf("unknown protocol %q (want BSYNC, MSYNC, MSYNC2, EC, QUORUM, SHARD)", p)
		}
	}
	var factors []int
	if quorum {
		for _, s := range strings.Split(*quorumF, ",") {
			f, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || f < 1 {
				return fmt.Errorf("bad -quorum-f entry %q", s)
			}
			factors = append(factors, f)
		}
	}
	var counts []int
	if shardGrid {
		for _, s := range strings.Split(*shardCounts, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || k < 1 {
				return fmt.Errorf("bad -shards entry %q", s)
			}
			counts = append(counts, k)
		}
	}

	cfg := check.ExploreConfig{
		Schedules:  *schedules,
		BaseSeed:   *seed,
		Ticks:      *ticks,
		Teams:      *teams,
		FaultEvery: *faultEvery,
	}
	if *repro != 0 {
		// A repro line names one shrunk schedule: run exactly that seed
		// (with faults iff -fault-every 1 accompanied it) and nothing else.
		cfg.Schedules = 1
		cfg.BaseSeed = *repro
	}

	failed := false
	report := func(label string, res *check.ExploreResult, reproLine func(check.Scenario) string) {
		if res.Ok() {
			fmt.Printf("%-12s ok: %d schedules (%d with faults), %d events checked\n",
				label, res.Explored, res.FaultRuns, res.Events)
			if *verbose {
				fmt.Printf("             seeds %d..%d, %d teams, %d ticks\n",
					cfg.BaseSeed, cfg.BaseSeed+int64(cfg.Schedules)-1, cfg.Teams, cfg.Ticks)
			}
			return
		}
		failed = true
		fmt.Printf("%-12s FAILED: %d of %d schedules\n", label, len(res.Failures), res.Explored)
		for _, f := range res.Failures {
			fmt.Printf("  %s\n", f)
			fmt.Printf("  repro: %s\n", reproLine(f.Shrunk))
		}
	}

	for _, proto := range list {
		proto := proto
		runner := harness.CheckedRunner(proto)
		if *interest {
			runner = harness.InterestCheckedRunner(proto)
		}
		res := check.Explore(cfg, runner)
		report(string(proto), res, func(sc check.Scenario) string {
			line := harness.ReproLine(proto, sc)
			if *interest {
				line += " -interest"
			}
			return line
		})
	}
	for _, f := range factors {
		f := f
		res := check.Explore(cfg, check.QuorumRunner(f))
		report(fmt.Sprintf("QUORUM(f=%d)", f), res, func(sc check.Scenario) string {
			return quorumReproLine(f, sc)
		})
	}
	for _, k := range counts {
		k := k
		res := check.Explore(cfg, check.ShardRunner(k))
		report(fmt.Sprintf("SHARD(k=%d)", k), res, func(sc check.Scenario) string {
			return shardReproLine(k, sc)
		})
	}
	if failed {
		return fmt.Errorf("consistency violations found")
	}
	return nil
}

// quorumReproLine renders the sdso-check invocation that re-runs one ABD
// schedule.
func quorumReproLine(f int, sc check.Scenario) string {
	line := fmt.Sprintf("go run ./cmd/sdso-check -repro %d -protocols QUORUM -quorum-f %d -teams %d -ticks %d",
		sc.Seed, f, sc.Teams, sc.Ticks)
	if sc.Faults {
		line += " -fault-every 1"
	}
	return line
}

// shardReproLine renders the sdso-check invocation that re-runs one
// handoff schedule.
func shardReproLine(k int, sc check.Scenario) string {
	line := fmt.Sprintf("go run ./cmd/sdso-check -repro %d -protocols SHARD -shards %d -teams %d -ticks %d",
		sc.Seed, k, sc.Teams, sc.Ticks)
	if sc.Faults {
		line += " -fault-every 1"
	}
	return line
}
