// Command sdso-check sweeps the consistency oracle over seeded delivery
// schedules for the paper's four protocols: each schedule runs a complete
// game with every message delivery perturbed by a seed-derived jitter
// (optionally under an ambient faultnet drop/dup/delay plan), records the
// per-process observation history, and replays it through the
// internal/check invariants. Any failure is greedily shrunk and reported
// with the command line that reproduces it.
//
// Usage:
//
//	sdso-check                                  # 64 schedules per protocol
//	sdso-check -protocols MSYNC2 -schedules 16  # one protocol, quick
//	sdso-check -seed 7 -fault-every 4           # every 4th schedule lossy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdso/internal/check"
	"sdso/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdso-check:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdso-check", flag.ContinueOnError)
	protos := fs.String("protocols", "BSYNC,MSYNC,MSYNC2,EC", "comma-separated protocols to check")
	schedules := fs.Int("schedules", 64, "delivery schedules (seeds) explored per protocol")
	seed := fs.Int64("seed", 1, "first schedule seed; schedule i runs seed+i")
	teams := fs.Int("teams", 4, "number of players")
	ticks := fs.Int("ticks", 48, "game horizon in logical ticks")
	faultEvery := fs.Int("fault-every", 4, "run every Nth schedule under ambient message faults (0 = never)")
	verbose := fs.Bool("v", false, "print per-protocol progress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var list []harness.Protocol
	for _, p := range strings.Split(*protos, ",") {
		name := harness.Protocol(strings.ToUpper(strings.TrimSpace(p)))
		switch name {
		case harness.BSYNC, harness.MSYNC, harness.MSYNC2, harness.EC:
			list = append(list, name)
		default:
			return fmt.Errorf("unknown protocol %q (want BSYNC, MSYNC, MSYNC2, EC)", p)
		}
	}

	failed := false
	for _, proto := range list {
		cfg := check.ExploreConfig{
			Schedules:  *schedules,
			BaseSeed:   *seed,
			Ticks:      *ticks,
			Teams:      *teams,
			FaultEvery: *faultEvery,
		}
		res := check.Explore(cfg, harness.CheckedRunner(proto))
		if res.Ok() {
			fmt.Printf("%-7s ok: %d schedules (%d with faults), %d events checked\n",
				proto, res.Explored, res.FaultRuns, res.Events)
			if *verbose {
				fmt.Printf("        seeds %d..%d, %d teams, %d ticks\n",
					*seed, *seed+int64(*schedules)-1, *teams, *ticks)
			}
			continue
		}
		failed = true
		fmt.Printf("%-7s FAILED: %d of %d schedules\n", proto, len(res.Failures), res.Explored)
		for _, f := range res.Failures {
			fmt.Printf("  %s\n", f)
			fmt.Printf("  repro: %s\n", harness.ReproLine(proto, f.Shrunk))
		}
	}
	if failed {
		return fmt.Errorf("consistency violations found")
	}
	return nil
}
