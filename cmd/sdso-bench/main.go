// Command sdso-bench regenerates the paper's evaluation: Figures 5-8 of
// "Exploiting Temporal and Spatial Constraints on Distributed Shared
// Objects" (ICDCS 1997), measured on the simulated 16-workstation /
// 10 Mbps-Ethernet cluster.
//
// Usage:
//
//	sdso-bench                 # all figures, both ranges
//	sdso-bench -fig 5 -range 3 # one panel
//	sdso-bench -seeds 5        # average over more game seeds
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"sdso/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdso-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdso-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, blocking, datasize, quorum, delta, interest, shard, resilience, or all")
	rng := fs.Int("range", 0, "tank visibility range (1 or 3); 0 means both")
	seeds := fs.Int("seeds", 3, "number of game seeds to average over")
	maxTicks := fs.Int("ticks", 200, "game horizon in logical ticks")
	extras := fs.Bool("extensions", false, "also run the LRC and causal-memory baselines")
	workers := fs.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sdso-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sdso-bench: memprofile:", err)
			}
		}()
	}

	ranges := []int{1, 3}
	if *rng == 1 || *rng == 3 {
		ranges = []int{*rng}
	} else if *rng != 0 {
		return fmt.Errorf("range must be 1 or 3, got %d", *rng)
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	protos := append([]harness.Protocol(nil), harness.PaperProtocols...)
	if *extras {
		protos = append(protos, harness.LRC, harness.Causal)
	}

	want := func(n string) bool { return *fig == "all" || *fig == n }

	for _, r := range ranges {
		needSweep := want("5") || want("6") || want("7") || (want("8") && r == 1)
		if !needSweep {
			continue
		}
		sw, err := harness.RunSweep(harness.SweepConfig{
			Protocols: protos,
			Range:     r,
			Seeds:     seedList,
			MaxTicks:  *maxTicks,
			Workers:   *workers,
		})
		if err != nil {
			return err
		}
		if want("5") {
			title := fmt.Sprintf("Figure 5 (range %d): avg execution time per process / avg object modifications", r)
			fmt.Println(sw.Table(title, "ms per modification", harness.MetricNormalizedTime))
		}
		if want("6") {
			title := fmt.Sprintf("Figure 6 (range %d): total message transfers (control + data)", r)
			fmt.Println(sw.Table(title, "messages", harness.MetricTotalMsgs))
		}
		if want("7") {
			title := fmt.Sprintf("Figure 7 (range %d): data message transfers", r)
			fmt.Println(sw.Table(title, "data messages", harness.MetricDataMsgs))
		}
		if want("8") && r == 1 {
			fmt.Println(sw.Table("Figure 8: protocol overhead as % of execution time (range 1)",
				"% of execution time", harness.MetricOverheadPct))
			fmt.Println(sw.OverheadBreakdown(16))
		}
	}

	// The paper's §4 announced future-work analyses, implemented here.
	if want("blocking") {
		rows, err := harness.BlockingAnalysis(1, seedList, nil)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderBlocking(rows))
	}
	if want("datasize") {
		rows, err := harness.DataSizeSweep(nil, 8, 1, seedList)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderDataSize(rows, 8))
	}
	if want("quorum") {
		rows, err := harness.QuorumAnalysis(seedList, *workers)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderQuorum(rows))
	}
	// The delta panel sweeps the delta-encoded exchange path (plain vs
	// delta + tick batching) across n up to 128 on the same simulated
	// cluster as Figures 5-8.
	if want("delta") {
		rows, err := harness.DeltaAnalysis(nil, seedList)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderDelta(rows))
	}
	// The interest panel sweeps the spatial interest filter (off vs on)
	// across fixed-density worlds at n up to 256, both sides running the
	// delta-encoded batched exchange.
	if want("interest") {
		rows, err := harness.InterestAnalysis(nil, seedList)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderInterest(rows))
	}
	// The shard panel sweeps shard counts {1, 4, 16} across the same
	// fixed-density worlds, DATA fanout bounded by shard residency.
	if want("shard") {
		rows, err := harness.ShardAnalysis(nil, nil, seedList)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderShard(rows))
	}
	// The resilience panel runs over real loopback sockets (not the
	// simulator) with chaos proxies killing every connection, so it is
	// opt-in rather than part of -fig all.
	if *fig == "resilience" {
		rows, err := harness.ResilienceAnalysis(nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderResilience(rows))
	}

	switch *fig {
	case "all", "5", "6", "7", "8", "blocking", "datasize", "quorum", "delta", "interest", "shard", "resilience":
		return nil
	default:
		return fmt.Errorf("unknown figure %q (want 5, 6, 7, 8, blocking, datasize, quorum, delta, interest, shard, resilience, or all)", *fig)
	}
}
