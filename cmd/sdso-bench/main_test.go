package main

import "testing"

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-range", "7"}); err == nil {
		t.Error("bad range accepted")
	}
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("bad figure accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	if err := run([]string{"-fig", "7", "-range", "1", "-seeds", "1", "-ticks", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
