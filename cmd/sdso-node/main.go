// Command sdso-node runs one game process of a genuinely distributed S-DSO
// deployment over TCP — the configuration the paper ran on its workstation
// cluster. Start one process per team, each naming the full address list
// and its own index:
//
//	sdso-node -id 0 -peers "host0:7000,host1:7000" -protocol MSYNC2 &
//	sdso-node -id 1 -peers "host0:7000,host1:7000" -protocol MSYNC2
//
// Every node must use identical -peers, -protocol, and game flags.
//
// With -reconnect the transport keeps each link alive across socket
// deaths (session resumption, jittered redial, optional -heartbeat
// liveness probing, bounded -sendq send queues), and a killed process can
// be restarted into the same game:
//
//	sdso-node -id 1 -peers ... -reconnect -join -incarnation 2
//
// On SIGINT or SIGTERM the node drains: queued frames are flushed, every
// link is half-closed with a clean FIN, and the process exits with code 3
// so scripts can tell a graceful interruption from a crash (1) or a
// finished game (0).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sdso/internal/game"
	"sdso/internal/protocol/lookahead"
	"sdso/internal/transport"
)

// exitDrained is the exit code after a signal-triggered graceful drain.
const exitDrained = 3

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdso-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdso-node", flag.ContinueOnError)
	id := fs.Int("id", -1, "this node's index into -peers")
	peers := fs.String("peers", "", "comma-separated listen addresses, one per node, indexed by -id")
	proto := fs.String("protocol", "MSYNC2", "lookahead protocol: BSYNC, MSYNC, or MSYNC2")
	rng := fs.Int("range", 1, "tank visibility range")
	seed := fs.Int64("seed", 1, "world placement seed (identical on every node)")
	ticks := fs.Int("ticks", 200, "game horizon in logical ticks")
	race := fs.Bool("race", true, "end the game when the first team reaches the goal")
	reconnect := fs.Bool("reconnect", false, "survive connection loss: redial with backoff and resume the session")
	grace := fs.Duration("grace", 0, "how long a broken link queues sends before the peer is declared gone (0 = default)")
	heartbeat := fs.Duration("heartbeat", 0, "liveness probe interval for idle links (0 = off unless -reconnect's default applies)")
	hbMisses := fs.Int("heartbeat-misses", 0, "probe intervals a silent link survives before teardown (0 = default)")
	sendq := fs.Int("sendq", 0, "per-peer send queue cap in bytes (0 = default; implies the resilient transport)")
	sendqFrames := fs.Int("sendq-frames", 0, "per-peer send queue cap in frames (0 = default)")
	incarnation := fs.Int64("incarnation", 0, "this process's life number; restart with a higher one to reclaim links")
	join := fs.Bool("join", false, "enter a game already in progress from a peer's checkpoint (requires -reconnect)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) < 2 {
		return fmt.Errorf("-peers must list at least two addresses")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(addrs))
	}
	var variant lookahead.Protocol
	switch strings.ToUpper(*proto) {
	case "BSYNC":
		variant = lookahead.BSYNC
	case "MSYNC":
		variant = lookahead.MSYNC
	case "MSYNC2":
		variant = lookahead.MSYNC2
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	if *heartbeat < 0 || *grace < 0 {
		return fmt.Errorf("-heartbeat and -grace must not be negative")
	}
	if *hbMisses < 0 || *sendq < 0 || *sendqFrames < 0 {
		return fmt.Errorf("-heartbeat-misses, -sendq, and -sendq-frames must not be negative")
	}
	if *incarnation < 0 {
		return fmt.Errorf("-incarnation must not be negative")
	}
	tcfg := transport.TCPConfig{
		Reconnect:         *reconnect,
		ReconnectGrace:    *grace,
		HeartbeatInterval: *heartbeat,
		HeartbeatMisses:   *hbMisses,
		SendQueueBytes:    *sendq,
		SendQueueFrames:   *sendqFrames,
		Incarnation:       *incarnation,
	}
	resilient := *reconnect || *heartbeat > 0 || *sendq > 0 || *sendqFrames > 0
	if *join && !resilient {
		return fmt.Errorf("-join requires the resilient transport (-reconnect)")
	}

	g := game.DefaultConfig(len(addrs), *rng)
	g.Seed = *seed
	g.MaxTicks = *ticks
	g.EndOnFirstGoal = *race

	fmt.Printf("node %d: joining %d-node mesh...\n", *id, len(addrs))
	ep, err := transport.DialTCPConfig(*id, addrs, tcfg)
	if err != nil {
		return fmt.Errorf("mesh: %w", err)
	}
	defer ep.Close()
	fmt.Printf("node %d: mesh up, playing team %d under %s\n", *id, *id, variant)

	// A signal drains instead of cutting: flush what's queued, FIN every
	// link so peers see a clean end-of-stream, and exit distinctly.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Printf("node %d: %v, draining...\n", *id, sig)
		flushed, _ := ep.Drain()
		_ = ep.Close()
		fmt.Printf("node %d: drained (%d pending bytes flushed)\n", *id, flushed)
		os.Exit(exitDrained)
	}()

	start := time.Now()
	stats, err := lookahead.RunPlayer(lookahead.PlayerConfig{
		Game:        g,
		Protocol:    variant,
		Endpoint:    ep,
		Join:        *join,
		Incarnation: *incarnation,
	})
	if err != nil {
		return fmt.Errorf("game: %w", err)
	}
	fmt.Printf("node %d finished: ticks=%d mods=%d score=%d reachedGoal=%v destroyed=%v (%.2fs wall)\n",
		*id, stats.Ticks, stats.Mods, stats.Score, stats.ReachedGoal, stats.Destroyed,
		time.Since(start).Seconds())
	return nil
}
