// Command sdso-node runs one game process of a genuinely distributed S-DSO
// deployment over TCP — the configuration the paper ran on its workstation
// cluster. Start one process per team, each naming the full address list
// and its own index:
//
//	sdso-node -id 0 -peers "host0:7000,host1:7000" -protocol MSYNC2 &
//	sdso-node -id 1 -peers "host0:7000,host1:7000" -protocol MSYNC2
//
// Every node must use identical -peers, -protocol, and game flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdso/internal/game"
	"sdso/internal/protocol/lookahead"
	"sdso/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdso-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdso-node", flag.ContinueOnError)
	id := fs.Int("id", -1, "this node's index into -peers")
	peers := fs.String("peers", "", "comma-separated listen addresses, one per node, indexed by -id")
	proto := fs.String("protocol", "MSYNC2", "lookahead protocol: BSYNC, MSYNC, or MSYNC2")
	rng := fs.Int("range", 1, "tank visibility range")
	seed := fs.Int64("seed", 1, "world placement seed (identical on every node)")
	ticks := fs.Int("ticks", 200, "game horizon in logical ticks")
	race := fs.Bool("race", true, "end the game when the first team reaches the goal")
	if err := fs.Parse(args); err != nil {
		return err
	}

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) < 2 {
		return fmt.Errorf("-peers must list at least two addresses")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(addrs))
	}
	var variant lookahead.Protocol
	switch strings.ToUpper(*proto) {
	case "BSYNC":
		variant = lookahead.BSYNC
	case "MSYNC":
		variant = lookahead.MSYNC
	case "MSYNC2":
		variant = lookahead.MSYNC2
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}

	g := game.DefaultConfig(len(addrs), *rng)
	g.Seed = *seed
	g.MaxTicks = *ticks
	g.EndOnFirstGoal = *race

	fmt.Printf("node %d: joining %d-node mesh...\n", *id, len(addrs))
	ep, err := transport.DialTCP(*id, addrs)
	if err != nil {
		return fmt.Errorf("mesh: %w", err)
	}
	defer ep.Close()
	fmt.Printf("node %d: mesh up, playing team %d under %s\n", *id, *id, variant)

	stats, err := lookahead.RunPlayer(lookahead.PlayerConfig{
		Game:     g,
		Protocol: variant,
		Endpoint: ep,
	})
	if err != nil {
		return fmt.Errorf("game: %w", err)
	}
	fmt.Printf("node %d finished: ticks=%d mods=%d score=%d reachedGoal=%v destroyed=%v (%.2fs wall)\n",
		*id, stats.Ticks, stats.Mods, stats.Score, stats.ReachedGoal, stats.Destroyed,
		ep.Now().Seconds())
	return nil
}
