package main

import "testing"

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing peers accepted")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-id", "5"}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-id", "0", "-protocol", "NOPE"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-peers", "onlyone:1", "-id", "0"}); err == nil {
		t.Error("single peer accepted")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-id", "0", "-heartbeat", "-1s"}); err == nil {
		t.Error("negative heartbeat interval accepted")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-id", "0", "-sendq", "-1"}); err == nil {
		t.Error("negative send queue cap accepted")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-id", "0", "-incarnation", "-2"}); err == nil {
		t.Error("negative incarnation accepted")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-id", "0", "-join"}); err == nil {
		t.Error("-join without the resilient transport accepted")
	}
}
