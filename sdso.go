// Package sdso is S-DSO: a distributed-shared-object runtime that lets
// applications exploit their own temporal and spatial semantics when
// keeping replicated objects consistent. It reproduces the system described
// in "Exploiting Temporal and Spatial Constraints on Distributed Shared
// Objects" (West, Schwan, Tacic, Ahamad; Georgia Tech, ICDCS 1997).
//
// # Model
//
// Every process holds a replica of every shared object (registered once,
// up front, with Share — the paper's share() call). Processes modify their
// replicas locally with Write and reconcile through Exchange, the heart of
// the system: each call advances a logical clock one tick, ships buffered
// modifications to the peers scheduled for a rendezvous now, and — in
// resync mode — blocks until those peers have exchanged back.
//
// When and with whom to exchange is decided by an application-supplied
// semantic function (SFunc): after each rendezvous the runtime asks it for
// the next exchange tick for that peer. A second application hook,
// SendData, decides which rendezvous actually carry object data (spatial
// filtering); withheld updates stay buffered — merged per object — in a
// per-peer slotted buffer until a later rendezvous flushes them. Small
// application "beacons" ride on every rendezvous so both sides can feed
// their semantic functions identical inputs, which keeps the pairwise
// schedule agreed and the system deadlock-free.
//
// The classic protocols from the paper are one-liners on this API:
// broadcast synchrony (BSYNC) is Exchange with the EveryTick schedule;
// the multicast lookahead protocols (MSYNC/MSYNC2) use distance-based
// schedules and spatial filters. Lock-based protocols (entry consistency,
// lazy release consistency) can be built from the put/get primitives.
//
// # Transports
//
// Runtimes communicate through an Endpoint. LocalGroup wires an in-process
// group (tests, simulations); ConnectTCP builds a full TCP mesh across real
// machines.
package sdso

import (
	"errors"
	"fmt"
	"time"

	"sdso/internal/core"
	"sdso/internal/metrics"
	"sdso/internal/store"
	"sdso/internal/transport"
)

// ObjectID names a shared object.
type ObjectID = store.ID

// SendMode selects how an exchange distributes updates, mirroring the
// paper's send_t argument.
type SendMode int

// Send modes.
const (
	// Multicast exchanges only with the peers due in the exchange-list.
	Multicast SendMode = SendMode(core.Multicast)
	// Broadcast flushes this exchange and all buffered modifications to
	// every live peer immediately.
	Broadcast SendMode = SendMode(core.Broadcast)
)

// SFunc is a semantic function: given a peer, the current logical tick, and
// the peer's beacon from the just-completed rendezvous, it returns the next
// tick at which the local process must exchange with that peer. It must
// return a tick strictly in the future and be symmetric — both partners,
// evaluating their own SFunc with the other's beacon, must produce the same
// tick (this is what makes the pairwise schedule deadlock-free).
type SFunc = core.SFunc

// EveryTick schedules a rendezvous with every peer at every tick — the
// BSYNC schedule.
func EveryTick(peer int, now int64, beacon []int64) int64 {
	return core.EveryTick(peer, now, beacon)
}

// ExchangeOptions parameterizes one Exchange call (the paper's resync_flag,
// how, s_func and attribute arguments).
type ExchangeOptions struct {
	// Resync selects push-pull mode: block until every peer exchanged
	// with this tick has exchanged back. Push-only otherwise.
	Resync bool
	// How selects Multicast (default) or Broadcast.
	How SendMode
	// SFunc reschedules each rendezvous partner; required with Resync.
	SFunc SFunc
	// SendData, when set, filters which peers receive object data this
	// rendezvous; withheld updates stay buffered for later.
	SendData func(peer int) bool
	// Beacon, when set, supplies the per-peer coordination payload
	// carried on this exchange's SYNC messages.
	Beacon func(peer int) []int64
}

// Option configures a Runtime.
type Option func(*options)

type options struct {
	mergeDiffs    bool
	firstExchange int64
	onBeacon      func(peer int, beacon []int64)
}

// WithDiffMerging toggles merging of successive updates to one object in
// the per-peer buffers (on by default; the paper's §3.1 optimization).
func WithDiffMerging(on bool) Option {
	return func(o *options) { o.mergeDiffs = on }
}

// WithFirstExchange sets the tick of the initial rendezvous with every peer
// (default 1).
func WithFirstExchange(tick int64) Option {
	return func(o *options) { o.firstExchange = tick }
}

// WithBeaconObserver installs a callback invoked with each peer's beacon as
// rendezvous complete.
func WithBeaconObserver(fn func(peer int, beacon []int64)) Option {
	return func(o *options) { o.onBeacon = fn }
}

// Runtime is one process's S-DSO instance.
type Runtime struct {
	rt *core.Runtime
	ep transport.Endpoint
	mc *metrics.Collector
}

// New builds a runtime over an endpoint obtained from LocalGroup or
// ConnectTCP.
func New(ep Endpoint, opts ...Option) (*Runtime, error) {
	if ep.inner == nil {
		return nil, errors.New("sdso: endpoint is not connected")
	}
	o := options{mergeDiffs: true, firstExchange: 1}
	for _, opt := range opts {
		opt(&o)
	}
	mc := metrics.NewCollector()
	rt, err := core.New(core.Config{
		Endpoint:      ep.inner,
		Metrics:       mc,
		MergeDiffs:    o.mergeDiffs,
		FirstExchange: o.firstExchange,
		OnBeacon:      o.onBeacon,
	})
	if err != nil {
		return nil, err
	}
	return &Runtime{rt: rt, ep: ep.inner, mc: mc}, nil
}

// ID returns this process's identity within the group.
func (r *Runtime) ID() int { return r.rt.ID() }

// N returns the group size.
func (r *Runtime) N() int { return r.rt.N() }

// Now returns the logical clock (ticks advanced by Exchange).
func (r *Runtime) Now() int64 { return r.rt.Now() }

// Share registers a shared object with its initial state — the paper's
// share() call, used once per object at initialization.
func (r *Runtime) Share(id ObjectID, initial []byte) error {
	return r.rt.Share(id, initial)
}

// Write modifies the local replica of a shared object; the update is
// buffered for every peer and distributed by later Exchanges.
func (r *Runtime) Write(id ObjectID, data []byte) error {
	return r.rt.Write(id, data)
}

// Read returns a copy of the local replica of a shared object.
func (r *Runtime) Read(id ObjectID) ([]byte, error) {
	return r.rt.Store().Get(id)
}

// Version returns the object's replica version (increments per write).
func (r *Runtime) Version(id ObjectID) (int64, error) {
	return r.rt.Store().Version(id)
}

// Exchange is the paper's exchange() call: advance the logical clock, ship
// updates to the peers due now, and (with Resync) rendezvous with them and
// reschedule via the semantic function.
func (r *Runtime) Exchange(opts ExchangeOptions) error {
	return r.rt.Exchange(core.ExchangeOpts{
		Resync:   opts.Resync,
		How:      core.SendMode(opts.How),
		SFunc:    opts.SFunc,
		SendData: opts.SendData,
		Beacon:   opts.Beacon,
	})
}

// Done announces that this process has finished: its remaining buffered
// updates are flushed to every peer and a completion notice is broadcast.
// won marks a process that reached the application's goal, ending
// first-to-goal games for the whole group.
func (r *Runtime) Done(won bool) error { return r.rt.Done(won) }

// GameOver reports whether any process announced a winning Done.
func (r *Runtime) GameOver() bool { return r.rt.GameOver() }

// Poll drains already-delivered messages without blocking.
func (r *Runtime) Poll() { r.rt.Poll() }

// PeerDone reports whether a peer announced completion.
func (r *Runtime) PeerDone(peer int) bool { return r.rt.PeerDone(peer) }

// LivePeers lists peers that have not announced completion.
func (r *Runtime) LivePeers() []int { return r.rt.LivePeers() }

// PendingObjects lists objects with updates buffered for a peer but not yet
// sent — semantic functions use it to advertise dirty regions.
func (r *Runtime) PendingObjects(peer int) []ObjectID { return r.rt.PendingObjects(peer) }

// AsyncPut pushes an object's state to a peer without waiting (the paper's
// async_put).
func (r *Runtime) AsyncPut(id ObjectID, to int) error { return r.rt.AsyncPut(id, to) }

// SyncPut pushes an object's state to a peer and blocks for the
// acknowledgment (the paper's sync_put).
func (r *Runtime) SyncPut(id ObjectID, to int) error { return r.rt.SyncPut(id, to) }

// AsyncGet requests an object from a peer; the reply is applied on arrival
// (the paper's async_get).
func (r *Runtime) AsyncGet(id ObjectID, from int) error { return r.rt.AsyncGet(id, from) }

// SyncGet requests an object from a peer and blocks until the fresh copy is
// applied (the paper's sync_get, the pull of pull-based protocols).
func (r *Runtime) SyncGet(id ObjectID, from int) error { return r.rt.SyncGet(id, from) }

// Stats summarizes a runtime's communication so far.
type Stats struct {
	MessagesSent int
	DataMessages int
	BytesSent    int
	LogicalTicks int
}

// Stats returns a snapshot of the runtime's counters.
func (r *Runtime) Stats() Stats {
	s := r.mc.Snapshot()
	return Stats{
		MessagesSent: s.TotalMsgs(),
		DataMessages: s.DataMsgs(),
		BytesSent:    s.BytesSent,
		LogicalTicks: s.Ticks,
	}
}

// Endpoint connects a runtime to its peer group. Obtain one from LocalGroup
// or ConnectTCP.
type Endpoint struct {
	inner transport.Endpoint
}

// Close shuts the endpoint down.
func (e Endpoint) Close() error {
	if e.inner == nil {
		return nil
	}
	return e.inner.Close()
}

// LocalGroup creates n connected in-process endpoints (useful for tests,
// simulations, and single-machine demos).
func LocalGroup(n int) []Endpoint {
	net := transport.NewMemNetwork(n)
	out := make([]Endpoint, n)
	for i := range out {
		out[i] = Endpoint{inner: net.Endpoint(i)}
	}
	return out
}

// ConnectTCP joins a TCP mesh: addrs lists one listen address per process,
// indexed by process ID; id names this process. The call returns once links
// to all peers are up, so every process must start within the dial timeout.
func ConnectTCP(id int, addrs []string) (Endpoint, error) {
	ep, err := transport.DialTCP(id, addrs)
	if err != nil {
		return Endpoint{}, fmt.Errorf("sdso: %w", err)
	}
	return Endpoint{inner: ep}, nil
}

// Elapsed returns time on the endpoint's clock (wall time on real
// transports).
func (e Endpoint) Elapsed() time.Duration {
	if e.inner == nil {
		return 0
	}
	return e.inner.Now()
}
